// Benchmark harness: one benchmark per figure and table of the paper.
//
//	go test -bench=. -benchmem
//
// Each benchmark runs the experiment end to end and reports the paper's
// headline observable as a custom metric (throughput ratio, utilization,
// δmax, ...), so a bench run doubles as a reproduction report. ns/op is the
// cost of regenerating the artifact; the custom metrics are the science.
// Durations are trimmed relative to the paper's 60-200 s runs to keep a
// full bench sweep under a few minutes; cmd/figures runs full lengths.
package starvation_test

import (
	"math/rand"
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/vegas"
	"starvation/internal/ccac"
	"starvation/internal/core"
	"starvation/internal/scenario"
	"starvation/internal/units"

	// Populate the CCA registry for ccaByName.
	_ "starvation/internal/cca/algo1"
	_ "starvation/internal/cca/bbr"
	_ "starvation/internal/cca/copa"
	_ "starvation/internal/cca/fast"
	_ "starvation/internal/cca/ledbat"
	_ "starvation/internal/cca/verus"
	_ "starvation/internal/cca/vivace"
)

func vegasFactory() cca.Algorithm { return vegas.New(vegas.Config{}) }

func vegasRestartable(conv *core.Convergence) cca.Algorithm {
	if conv == nil {
		return vegas.New(vegas.Config{})
	}
	v := vegas.New(vegas.Config{BaseRTT: conv.Rm})
	v.SetCwndPkts(conv.FinalCwndPkts)
	return v
}

// BenchmarkFig1Convergence regenerates Figure 1: the ideal-path RTT
// convergence of a delay-convergent CCA. Metrics: the equilibrium interval
// and convergence time.
func BenchmarkFig1Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		conv := core.MeasureConvergence(vegasFactory, units.Mbps(12),
			100*time.Millisecond, core.MeasureOpts{Duration: 15 * time.Second})
		b.ReportMetric(conv.DMax.Seconds()*1e3, "dmax_ms")
		b.ReportMetric(conv.Delta.Seconds()*1e3, "delta_ms")
		b.ReportMetric(conv.ConvergedAt.Seconds(), "T_s")
	}
}

// BenchmarkFig2RateDelayShape regenerates Figure 2's shape with Algorithm 1
// (the hypothetical CCA with deliberately wide delay bands).
func BenchmarkFig2RateDelayShape(b *testing.B) {
	f := core.Factory(func() cca.Algorithm {
		return ccaByName("algo1")
	})
	rates := []units.Rate{units.Mbps(2), units.Mbps(8), units.Mbps(32)}
	for i := 0; i < b.N; i++ {
		sw := core.RateDelaySweep("algo1", f, 50*time.Millisecond, rates,
			core.MeasureOpts{Duration: 12 * time.Second})
		b.ReportMetric(sw.DeltaMax(rates[0]).Seconds()*1e3, "deltamax_ms")
	}
}

// BenchmarkFig3RateDelayVegas..Vivace regenerate the Figure 3 panels: the
// equilibrium delay band of each CCA across link rates. Metric: δmax and
// the dmax bound.
func benchFig3(b *testing.B, name string) {
	rates := []units.Rate{units.Mbps(2), units.Mbps(12), units.Mbps(48)}
	for i := 0; i < b.N; i++ {
		sw := core.RateDelaySweep(name, func() cca.Algorithm { return ccaByName(name) },
			100*time.Millisecond, rates, core.MeasureOpts{Duration: 12 * time.Second})
		b.ReportMetric(sw.DeltaMax(rates[0]).Seconds()*1e3, "deltamax_ms")
		b.ReportMetric(sw.DMaxBound(rates[0]).Seconds()*1e3, "dmaxbound_ms")
	}
}

func BenchmarkFig3RateDelayVegas(b *testing.B)  { benchFig3(b, "vegas") }
func BenchmarkFig3RateDelayFast(b *testing.B)   { benchFig3(b, "fast") }
func BenchmarkFig3RateDelayCopa(b *testing.B)   { benchFig3(b, "copa") }
func BenchmarkFig3RateDelayBBR(b *testing.B)    { benchFig3(b, "bbr") }
func BenchmarkFig3RateDelayVivace(b *testing.B) { benchFig3(b, "vivace") }

// BenchmarkFig4Pigeonhole regenerates Figure 4: the step-1 search for two
// link rates with colliding delay ranges. Metric: the rate ratio achieved.
func BenchmarkFig4Pigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.PigeonholeSearch(vegasFactory, 50*time.Millisecond,
			8, 0.8, 5*time.Millisecond, units.Mbps(4), 6,
			core.MeasureOpts{Duration: 12 * time.Second})
		if !res.Found {
			b.Fatal("pigeonhole found no pair")
		}
		b.ReportMetric(float64(res.C2)/float64(res.C1), "C2/C1")
	}
}

// BenchmarkFig5EmulationTrajectories regenerates Figures 5/6 and the
// Theorem 1 headline: the two-flow delay-trajectory emulation. Metric: the
// starvation ratio and the adversary's clamp error.
func BenchmarkFig5EmulationTrajectories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.EmulateTwoFlow(core.EmulationSpec{
			Make:     vegasRestartable,
			Rm:       50 * time.Millisecond,
			C1:       units.Mbps(12),
			C2:       units.Mbps(384),
			D:        20 * time.Millisecond,
			Measure:  core.MeasureOpts{Duration: 15 * time.Second},
			Duration: 15 * time.Second,
		})
		b.ReportMetric(res.Ratio, "ratio")
		b.ReportMetric(res.TwoFlow.Utilization(), "utilization")
		b.ReportMetric(res.Shaper2.MaxNegative.Seconds()*1e3, "clamp_ms")
	}
}

// BenchmarkTheorem1Construction is the same construction driven through
// the pigeonhole search end to end (X-T1).
func BenchmarkTheorem1Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ph := core.PigeonholeSearch(vegasFactory, 50*time.Millisecond,
			8, 0.8, 5*time.Millisecond, units.Mbps(4), 6,
			core.MeasureOpts{Duration: 10 * time.Second})
		if !ph.Found {
			b.Fatal("no pair")
		}
		res := core.EmulateTwoFlow(core.EmulationSpec{
			Make: vegasRestartable, Rm: 50 * time.Millisecond,
			C1: ph.C1, C2: ph.C2, D: 20 * time.Millisecond,
			Measure:  core.MeasureOpts{Duration: 10 * time.Second},
			Duration: 10 * time.Second,
		})
		b.ReportMetric(res.Ratio, "ratio")
	}
}

// BenchmarkTheorem2Underutilization regenerates the Theorem 2 construction
// (X-T2). Metric: achieved utilization on the inflated link (→ C/C').
func BenchmarkTheorem2Underutilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.UnderutilizationConstruction(core.UnderutilizationSpec{
			Make: vegasRestartable, Rm: 50 * time.Millisecond,
			C: units.Mbps(12), Multiplier: 50,
			Measure:  core.MeasureOpts{Duration: 10 * time.Second},
			Duration: 10 * time.Second,
		})
		b.ReportMetric(res.Utilization, "utilization")
	}
}

// BenchmarkFig7RenoCubicDelayedAck regenerates Figure 7. Metrics: the
// bounded throughput ratios (paper: 2.7× Reno, 3.2× Cubic).
func BenchmarkFig7RenoCubicDelayedAck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reno := scenario.Fig7Reno(scenario.Opts{Duration: 60 * time.Second})
		cubic := scenario.Fig7Cubic(scenario.Opts{Duration: 60 * time.Second})
		b.ReportMetric(reno.Observables["ratio"], "reno_ratio")
		b.ReportMetric(cubic.Observables["ratio"], "cubic_ratio")
	}
}

// BenchmarkTable51CopaSingle regenerates §5.1's single-flow poisoning
// (paper: 8 of 120 Mbit/s).
func BenchmarkTable51CopaSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.CopaSingleFlowPoison(scenario.Opts{Duration: 30 * time.Second})
		b.ReportMetric(res.Observables["throughput_mbps"], "mbps")
		b.ReportMetric(res.Observables["utilization"], "utilization")
	}
}

// BenchmarkTable51CopaTwoFlow regenerates §5.1's two-flow variant
// (paper: 8.8 vs 95 Mbit/s).
func BenchmarkTable51CopaTwoFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.CopaTwoFlowPoison(scenario.Opts{Duration: 30 * time.Second})
		b.ReportMetric(res.Observables["ratio"], "ratio")
		b.ReportMetric(res.Observables["poisoned_mbps"], "poisoned_mbps")
	}
}

// BenchmarkTable52BBRStarvation regenerates §5.2 (paper: 8.3 vs 107).
func BenchmarkTable52BBRStarvation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.BBRTwoFlowRTT(scenario.Opts{Duration: 30 * time.Second})
		b.ReportMetric(res.Observables["ratio"], "ratio")
		b.ReportMetric(res.Observables["rtt40_mbps"], "starved_mbps")
	}
}

// BenchmarkTable53VivaceStarvation regenerates §5.3 (paper: 9.9 vs 99.4).
func BenchmarkTable53VivaceStarvation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.VivaceAckAggregation(scenario.Opts{Duration: 30 * time.Second})
		b.ReportMetric(res.Observables["ratio"], "ratio")
		b.ReportMetric(res.Observables["quantized_mbps"], "starved_mbps")
	}
}

// BenchmarkTable54AllegroStarvation regenerates §5.4's headline
// (paper: 10.3 vs 99.1).
func BenchmarkTable54AllegroStarvation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.AllegroRandomLoss(scenario.Opts{Duration: 30 * time.Second})
		b.ReportMetric(res.Observables["ratio"], "ratio")
		b.ReportMetric(res.Observables["lossy_mbps"], "starved_mbps")
	}
}

// BenchmarkTable54AllegroControls regenerates §5.4's control rows: both
// flows lossy (fair) and a single lossy flow (full utilization).
func BenchmarkTable54AllegroControls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		both := scenario.AllegroBothLossy(scenario.Opts{Duration: 30 * time.Second})
		single := scenario.AllegroSingleLossy(scenario.Opts{Duration: 30 * time.Second})
		b.ReportMetric(both.Observables["jain"], "both_jain")
		b.ReportMetric(single.Observables["utilization"], "single_utilization")
	}
}

// BenchmarkTable63FigureOfMerit evaluates the closed-form §6.3 table.
func BenchmarkTable63FigureOfMerit(b *testing.B) {
	rm := time.Duration(0)
	rmax := 100 * time.Millisecond
	d := 10 * time.Millisecond
	var veg, exp float64
	for i := 0; i < b.N; i++ {
		veg = core.VegasFigureOfMerit(rmax, rm, d, 2)
		exp = core.ExponentialFigureOfMerit(rmax, rm, d, 2)
	}
	b.ReportMetric(veg, "vegas_range")
	b.ReportMetric(exp, "exp_range")
}

// BenchmarkAlgo1Fairness runs the X-A1 demonstration: Algorithm 1 stays
// s-fair under the jitter that starves Vegas.
func BenchmarkAlgo1Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fair := scenario.Algo1Fairness(scenario.Opts{Duration: 40 * time.Second})
		veg := scenario.VegasUnderJitter(scenario.Opts{Duration: 40 * time.Second})
		b.ReportMetric(fair.Observables["ratio"], "algo1_ratio")
		b.ReportMetric(veg.Observables["ratio"], "vegas_ratio")
	}
}

// BenchmarkCCACBoundedSearch runs the Appendix C analogue. Metrics: the
// worst bounded ratio without injection and the growing one with it.
func BenchmarkCCACBoundedSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clean := ccac.Search(ccac.Params{CPkts: 20, BufferPkts: 20, Depth: 10})
		inj := ccac.Search(ccac.Params{CPkts: 20, BufferPkts: 20, Depth: 10, InjectLoss: true})
		b.ReportMetric(clean.MaxRatio, "overflow_only_ratio")
		b.ReportMetric(inj.MaxRatio, "injected_ratio")
	}
}

// ccaByName instantiates a registered CCA with a deterministic seed.
func ccaByName(name string) cca.Algorithm {
	f := cca.Lookup(name)
	if f == nil {
		panic("unknown CCA " + name)
	}
	return f(1500, rand.New(rand.NewSource(7)))
}

// BenchmarkAlgo1Ablation runs the §6.3 design ablation: the published
// AIMD/per-Rm update against the CCAC-rejected AIAD and per-ACK variants.
func BenchmarkAlgo1Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.Algo1Ablation(scenario.Opts{Duration: 40 * time.Second})
		b.ReportMetric(res.Observables["aimd_ratio"], "aimd_ratio")
		b.ReportMetric(res.Observables["aiad_ratio"], "aiad_ratio")
		b.ReportMetric(res.Observables["perack_ratio"], "perack_ratio")
	}
}

// BenchmarkECNAvoidsStarvation runs the §6.4 demonstration: ECN-reacting
// loss-blind AIMD vs loss-reacting AIMD under asymmetric injected loss.
func BenchmarkECNAvoidsStarvation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.ECNAvoidsStarvation(scenario.Opts{Duration: 30 * time.Second})
		b.ReportMetric(res.Observables["ecn_ratio"], "ecn_ratio")
		b.ReportMetric(res.Observables["loss_ratio"], "loss_ratio")
	}
}

// BenchmarkTheorem3StrongModel runs the Appendix B construction: the
// delay-lowering trace sequence that forces a factor-s throughput gap.
func BenchmarkTheorem3StrongModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.StrongModelConstruction(core.StrongModelSpec{
			Make:     vegasRestartable,
			Rm:       50 * time.Millisecond,
			Lambda:   units.Mbps(4),
			D:        5 * time.Millisecond,
			S:        2,
			Duration: 15 * time.Second,
		})
		if !res.FoundPair {
			b.Fatal("no pair found")
		}
		b.ReportMetric(res.Ratio, "pair_ratio")
		b.ReportMetric(float64(res.PairIndex), "pair_step")
	}
}
