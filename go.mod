module starvation

go 1.22
