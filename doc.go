// Package starvation reproduces "Starvation in End-to-End Congestion
// Control" (Arun, Alizadeh, Balakrishnan — SIGCOMM 2022) as a Go library:
// a deterministic packet-level link emulator, the delay-bounding congestion
// control algorithms the paper studies (Vegas, FAST, Copa, BBR, PCC Vivace,
// PCC Allegro) and the loss-based baselines (Reno, Cubic), the bounded
// non-congestive delay network model of §3, the constructive machinery of
// Theorems 1 and 2, the §6.3 starvation-resistant Algorithm 1, and a
// benchmark harness that regenerates every figure and table.
//
// Start with DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and examples/quickstart for code.
//
// The root package holds only the benchmark harness (bench_test.go); the
// implementation lives under internal/ and the runnable tools under cmd/
// and examples/.
package starvation
