package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"starvation/internal/obs"
	"starvation/internal/units"
)

// watchFlow is one flow's live state, folded from the event stream alone
// (rate samples, episode boundaries) — the view needs no access to
// recorder internals mid-run.
type watchFlow struct {
	rateBps  float64
	starved  bool
	episodes int
}

// watchView is the single-writer state behind the -watch live display.
// The simulation goroutine folds events into it via Emit; the wall-clock
// render goroutine reads it under the same obs.Synchronized lock.
type watchView struct {
	// downstream receives every event after folding (the JSONL trace
	// writer, when -trace is also set), so it shares the watch lock and
	// the periodic flush is race-free.
	downstream obs.Probe

	flows    []watchFlow
	phase    string
	episodes int
	events   int64
	now      time.Duration
}

func (v *watchView) Emit(e obs.Event) {
	if v.downstream != nil {
		v.downstream.Emit(e)
	}
	v.events++
	if e.At > v.now {
		v.now = e.At
	}
	if e.Flow >= 0 {
		for int(e.Flow) >= len(v.flows) {
			v.flows = append(v.flows, watchFlow{})
		}
	}
	switch e.Type {
	case obs.EvRateSample:
		v.flows[e.Flow].rateBps = float64(e.Seq)
	case obs.EvStarveOnset:
		v.flows[e.Flow].starved = true
		v.flows[e.Flow].episodes++
		v.episodes++
	case obs.EvStarveEnd:
		v.flows[e.Flow].starved = false
	case obs.EvPhase:
		v.phase = obs.PhaseName(int(e.Seq))
	}
}

// render writes one status line to stderr. Must run under the watch lock.
func (v *watchView) render(final bool) {
	var b strings.Builder
	starved := 0
	for i := range v.flows {
		if v.flows[i].starved {
			starved++
		}
	}
	fmt.Fprintf(&b, "watch t=%-8v phase=%-7s flows=%d starved=%d episodes=%d events=%d",
		v.now.Round(time.Millisecond), v.phase, len(v.flows), starved, v.episodes, v.events)
	// Per-flow rates stay readable for small runs; population runs get
	// the summary counts above.
	if n := len(v.flows); n > 0 && n <= 8 {
		b.WriteString("  |")
		for i := range v.flows {
			mark := ""
			if v.flows[i].starved {
				mark = "*"
			}
			fmt.Fprintf(&b, " f%d %v%s", i, units.Rate(v.flows[i].rateBps), mark)
		}
	}
	if final {
		b.WriteString("  (done)")
	}
	fmt.Fprintln(os.Stderr, b.String())
}

// watcher owns the -watch goroutine: a wall-clock ticker that renders the
// live view and flushes the trace sink while the simulation emits through
// the shared obs.Synchronized probe.
type watcher struct {
	sync *obs.Synchronized
	view *watchView
	stop chan struct{}
	done chan struct{}
}

// startWatch begins rendering every interval. downstream (may be nil)
// receives the event stream under the watch lock; flush (may be nil) runs
// each tick under the same lock — the periodic trace flush, whose errors
// stay sticky in the writer and surface at finish.
func startWatch(every time.Duration, downstream obs.Probe, flush func() error) *watcher {
	view := &watchView{downstream: downstream}
	w := &watcher{
		sync: obs.NewSynchronized(view),
		view: view,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.sync.Do(func(obs.Probe) {
					view.render(false)
					if flush != nil {
						_ = flush() // sticky; surfaced by obsSink.finish
					}
				})
			}
		}
	}()
	return w
}

// halt stops the render loop and prints the final state line.
func (w *watcher) halt() {
	close(w.stop)
	<-w.done
	w.sync.Do(func(obs.Probe) { w.view.render(true) })
}
