package main

import (
	"context"

	"starvation/internal/core"
	"starvation/internal/guard"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/scenario"
)

// runPopulation runs one realization of the population spec with the CLI's
// runtime attachments — guard, flight recorder, probe, interrupt context —
// wired into the assembled configuration. The spec itself (and therefore
// the clause grammar, the defaults, and every validation error string) is
// shared with the starved experiment service; only the attachments differ
// between the two front ends.
func runPopulation(spec scenario.PopulationSpec, g *guard.Options, t *network.TelemetryConfig, ctx context.Context, probe obs.Probe) (*core.PopulationResult, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Guard = g
	cfg.Probe = probe
	cfg.Telemetry = t
	cfg.Ctx = ctx
	return core.RunPopulation(cfg)
}
