package main

import (
	"context"
	"time"

	"starvation/internal/core"
	"starvation/internal/endpoint"
	"starvation/internal/guard"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/scenario"
	"starvation/internal/units"
)

// populationFlags describe population (-flows) mode: an N-flow mixed
// population over a named topology, evaluated with population starvation
// statistics.
type populationFlags struct {
	flowsSpec string // scenario.ParseFlows clause
	topoSpec  string // scenario.ParseTopology clause
	rateMbps  float64
	bufPkts   int
	epsilon   float64
	duration  time.Duration
	seed      int64
	guard     *guard.Options
	telemetry *network.TelemetryConfig // nil disables the flight recorder
	ctx       context.Context          // nil runs uninterruptible
}

// runPopulation assembles and runs the freeform population experiment.
func runPopulation(f populationFlags, probe obs.Probe) (*core.PopulationResult, error) {
	topo, err := scenario.ParseTopology(f.topoSpec, units.Mbps(f.rateMbps), f.bufPkts*endpoint.DefaultMSS)
	if err != nil {
		return nil, err
	}
	specs, err := scenario.ParseFlows(f.flowsSpec, f.seed, topo)
	if err != nil {
		return nil, err
	}
	cfg := core.PopulationConfig{
		Flows:      specs,
		Links:      topo.Links,
		Bottleneck: topo.Bottleneck,
		Seed:       f.seed,
		Duration:   f.duration,
		Epsilon:    f.epsilon,
		Guard:      f.guard,
		Probe:      probe,
		Telemetry:  f.telemetry,
		Ctx:        f.ctx,
	}
	if topo.Links == nil {
		cfg.Rate = units.Mbps(f.rateMbps)
		cfg.BufferBytes = f.bufPkts * endpoint.DefaultMSS
	}
	return core.RunPopulation(cfg)
}
