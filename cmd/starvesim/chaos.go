package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"starvation/internal/runner"
	"starvation/internal/runner/chaos"
)

// defaultSelfTestSpec is the canned fault mix `-chaos default` selects:
// enough of every fault kind that one self-test exercises body errors,
// panics, hangs, slow workers, cache quarantine, and manifest recovery.
const defaultSelfTestSpec = "seed:1;fail:0.3;panic:0.15;hang:0.1,150ms;slow:0.25,5ms;corrupt:2;truncate-manifest:1"

// runChaosSelfTest executes the orchestration chaos self-test: a
// synthetic deterministic batch run twice under injected faults — a cold
// pass that must converge through retries, then a warm pass over a
// sabotaged cache and manifest that must converge through quarantine and
// salvage — with every artifact required to be byte-identical to a
// fault-free baseline. Exits 0 on success, 1 on divergence, 2 on a bad
// spec, 3 when interrupted.
func runChaosSelfTest(ctx context.Context, specStr string, jobsN int) {
	if specStr == "default" {
		specStr = defaultSelfTestSpec
	}
	spec, err := chaos.Parse(specStr)
	if err != nil {
		usagef("starvesim: %v", err)
	}

	const n = 16
	mkJobs := func() []runner.Job {
		jobs := make([]runner.Job, n)
		for i := range jobs {
			id := fmt.Sprintf("chaos-%02d", i)
			payload := []byte(fmt.Sprintf("artifact %s: deterministic bytes %d\n", id, i*i))
			jobs[i] = runner.Job{
				ID:  id,
				Key: runner.Key{Kind: "chaos-selftest", Scenario: id},
				Run: func(ctx context.Context) ([]byte, error) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					return payload, nil
				},
			}
		}
		return jobs
	}

	// Fault-free baseline: the bytes both chaos passes must reproduce.
	baseline := (&runner.Pool{Jobs: jobsN}).Run(ctx, mkJobs())

	dir, err := os.MkdirTemp("", "starvesim-chaos-")
	if err != nil {
		fatalf("starvesim: %v", err)
	}
	defer os.RemoveAll(dir)
	cacheDir := filepath.Join(dir, "cache")
	maniPath := filepath.Join(dir, "manifest.json")
	injector := chaos.New(spec)
	retry := runner.RetryPolicy{
		MaxAttempts: spec.RetryAttempts(),
		Seed:        spec.Seed,
		Base:        2 * time.Millisecond, // injected failures are expected; back off fast
	}
	progress := func(ev runner.ProgressEvent) {
		if ev.Kind == runner.ProgressRetry {
			fmt.Fprintf(os.Stderr, "starvesim: %s attempt %d failed (%s); retrying\n",
				ev.Job, ev.Attempt, ev.Err.Kind)
		}
	}

	// Cold pass: every body runs under injected faults and must converge
	// inside the retry budget.
	cold := &runner.Pool{
		Jobs:     jobsN,
		Cache:    &runner.Cache{Dir: cacheDir},
		Manifest: runner.LoadManifest(maniPath),
		Retry:    retry,
		Progress: progress,
	}
	coldResults := cold.Run(ctx, injector.Wrap(mkJobs()))

	// Sabotage the persisted state, then run warm: quarantined cache
	// entries re-run, the truncated manifest salvages, and the batch still
	// converges.
	if spec.CorruptN > 0 {
		if _, err := injector.CorruptCache(cacheDir); err != nil {
			fatalf("starvesim: corrupting cache: %v", err)
		}
	}
	if _, err := injector.TruncateManifest(maniPath); err != nil {
		fatalf("starvesim: truncating manifest: %v", err)
	}
	manifest := runner.LoadManifest(maniPath)
	if manifest.RecoveredFrom != "" {
		fmt.Fprintf(os.Stderr, "starvesim: manifest: %s\n", manifest.RecoveredFrom)
	}
	warm := &runner.Pool{
		Jobs:     jobsN,
		Cache:    &runner.Cache{Dir: cacheDir},
		Manifest: manifest,
		Retry:    retry,
		Progress: progress,
	}
	warmResults := warm.Run(ctx, injector.Wrap(mkJobs()))

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "starvesim: interrupted")
		stopProfiles()
		os.Exit(3)
	}

	bad := 0
	check := func(pass string, results []runner.JobResult) {
		for i, res := range results {
			switch {
			case res.Err != nil:
				fmt.Fprintf(os.Stderr, "starvesim: chaos self-test: %s pass: %s failed terminally: %v\n",
					pass, res.ID, res.Err)
				bad++
			case !bytes.Equal(res.Artifact, baseline[i].Artifact):
				fmt.Fprintf(os.Stderr, "starvesim: chaos self-test: %s pass: %s diverged from the fault-free run\n",
					pass, res.ID)
				bad++
			}
		}
	}
	check("cold", coldResults)
	check("warm", warmResults)

	coldStats, warmStats := cold.Stats(), warm.Stats()
	fmt.Printf("chaos self-test: %d jobs: cold pass %d retried; warm pass %d quarantined, %d re-run, %d cached\n",
		n, coldStats.Retries, warmStats.CacheCorrupt, warmStats.Executed, warmStats.CacheHits)
	fmt.Println(injector.Summary())
	if bad > 0 {
		fatalf("starvesim: chaos self-test FAILED: %d divergence(s)", bad)
	}
	fmt.Println("chaos self-test passed: all artifacts byte-identical to the fault-free run")
}
