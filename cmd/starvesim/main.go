// Command starvesim runs the paper's experiments from the command line.
//
// Usage:
//
//	starvesim -list
//	starvesim -scenario bbr-two [-seed 2] [-duration 60s]
//	starvesim -scenario bbr-two -trace events.jsonl -metrics metrics.txt
//	starvesim -scenario allegro-burst -telemetry
//	starvesim -scenario allegro-burst -watch 1s -trace events.jsonl
//	starvesim -scenario all [-jobs 4]
//	starvesim -scenario bbr-two -sweep 10 [-sweep-jobs 4]
//	starvesim -flows "vegas*8;reno*8:rm=120ms" -rate 48 -buffer 128
//	starvesim -flows "vegas*8;reno*8" -topology fanin:4 -eps 0.1
//	starvesim -server localhost:8377 -flows "vegas*8;reno*8"
//
// Each scenario prints the paper's claimed numbers next to the measured
// ones. -trace streams the run's packet-lifecycle events (enqueue, drop,
// mark, dequeue, deliver, ack receipt, cwnd updates, rate samples) as
// JSONL for offline analysis; -metrics writes the end-of-run counters
// registry in Prometheus text format. Both observe a single scenario:
// combine them with one -scenario name (or -cca), not "all".
//
// -telemetry turns on the flight recorder: windowed per-flow series, the
// online starvation-episode detector, and run-phase spans. The result
// gains an episode timeline table, and -metrics gains the telemetry
// families. -watch <interval> additionally renders a live one-line view
// to stderr as the run progresses (and flushes -trace each tick); it
// implies -telemetry. The recorder only observes: fixed-seed runs
// produce bit-identical realizations with it on or off.
//
// -jobs runs the scenarios of "-scenario all" in parallel; output stays
// in sorted scenario order regardless of completion order. -sweep N runs
// one scenario across N consecutive seeds (starting at -seed, default 2)
// and prints one observables line per seed; -sweep-jobs bounds the sweep
// workers (0 = GOMAXPROCS). Every run is an independent deterministic
// simulator, so parallelism never changes any measured number.
//
// -flows runs population mode: semicolon-separated flow groups
// (cca[*count][:key=val,...]) over a -topology (single, parkinglot:<n>,
// fanin:<n>), reporting population starvation statistics — starved
// fraction under the -eps threshold, share quantiles, per-cohort Jain.
//
// -server <addr> runs the population experiment on a starved daemon (see
// cmd/starved) instead of locally: the spec is submitted as a one-job
// batch, the batch's events stream to stderr, and the result printed to
// stdout is byte-identical to a local run. A spec the daemon rejects
// exits 2 with the same message a local run would.
//
// -guard enables the run-guard layer (stall watchdog, conservation
// checks); -deadline adds a wall-clock budget per run. -faults injects
// path impairments in freeform (-cca) mode, e.g.
//
//	starvesim -cca allegro -cca2 allegro -faults "ge:0.008,0.2,0.5;flap:5s,200ms"
//
// -chaos <spec> runs the orchestration chaos self-test instead of an
// experiment: a synthetic batch is executed under injected faults (see
// internal/runner/chaos for the spec grammar; "default" selects a canned
// spec) and must converge, via retries and cache quarantine, to artifacts
// byte-identical to a fault-free run.
//
// An interrupt (SIGINT or SIGTERM) cancels the run context: the event
// loop halts at the next tick, the trace/metrics/telemetry exporters
// flush what the truncated run produced, and the command exits 3.
//
// Exit status: 0 on success, 1 on runtime failure (unknown scenario,
// guard deadline), 2 on a malformed configuration, 3 after an interrupt
// with a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"starvation/internal/guard"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/prof"
	"starvation/internal/runner"
	"starvation/internal/scenario"
)

// stopProfiles finishes -cpuprofile/-memprofile. It must run before any
// os.Exit (deferred calls don't), so exit paths call it explicitly; the
// function is idempotent.
var stopProfiles = func() {}

func main() {
	var (
		list     = flag.Bool("list", false, "list available scenarios")
		name     = flag.String("scenario", "", "scenario to run (or \"all\")")
		seed     = flag.Int64("seed", 0, "RNG seed (0 = reference realization)")
		duration = flag.Duration("duration", 0, "override run duration")

		tracePath   = flag.String("trace", "", "write packet-lifecycle events as JSONL to this file")
		metricsPath = flag.String("metrics", "", "write the counters registry in Prometheus text format to this file")
		telemetry   = flag.Bool("telemetry", false, "enable the flight recorder: windowed per-flow series, online starvation-episode detection, run-phase spans (appends an episode table to the result; adds episode/series metrics to -metrics)")
		watchEvery  = flag.Duration("watch", 0, "render a live telemetry view to stderr every interval, e.g. -watch 1s (implies -telemetry; flushes -trace periodically)")

		guardOn  = flag.Bool("guard", false, "enable the run-guard layer (stall watchdog, conservation checks)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget per run; exceeding it halts the run (implies -guard)")

		jobsN     = flag.Int("jobs", 0, "scenarios to run in parallel with -scenario all (0 = GOMAXPROCS)")
		sweepN    = flag.Int("sweep", 0, "run the scenario across this many consecutive seeds, one observables line per seed")
		sweepJobs = flag.Int("sweep-jobs", 0, "parallel workers for -sweep (0 = GOMAXPROCS)")

		// Population mode: -flows selects it.
		flows    = flag.String("flows", "", "population mode: semicolon-separated flow groups, cca[*count][:key=val,...] (keys: rm, start, stagger, jitter, loss, ackagg, path, cohort)")
		topology = flag.String("topology", "single", "population mode: single | parkinglot:<hops> | fanin:<access-links>")
		epsilon  = flag.Float64("eps", 0, "population mode: starvation threshold as a fraction of fair share (0 = default 0.1)")
		server   = flag.String("server", "", "population mode: run on a starved daemon at this address (host:port or URL) instead of locally; output is byte-identical")

		// Freeform mode: -cca selects it; everything else is optional.
		cca1   = flag.String("cca", "", "freeform mode: CCA for flow 0 (e.g. vegas, bbr)")
		cca2   = flag.String("cca2", "", "freeform mode: CCA for flow 1 (empty = single flow)")
		fspec  = flag.String("faults", "", "freeform mode: flow 0 impairments and link schedule, semicolon-separated clauses (ge:pG2B,pB2G,pDropBad | reorder:p,delay | dup:p | flap:period,down | rate:at=mbps,...)")
		rate   = flag.Float64("rate", 48, "freeform mode: bottleneck Mbit/s")
		buffer = flag.Int("buffer", 0, "freeform mode: buffer in packets (0 = infinite)")
		rm1    = flag.Duration("rm", 50*time.Millisecond, "freeform mode: flow 0 propagation RTT")
		rm2    = flag.Duration("rm2", 50*time.Millisecond, "freeform mode: flow 1 propagation RTT")
		jspec  = flag.String("jitter", "", "freeform mode: flow 0 jitter, kind:value (const|uniform|aggregate|burst:5ms, spike:10ms/100ms)")
		loss1  = flag.Float64("loss", 0, "freeform mode: flow 0 random loss probability")
		ackPer = flag.Duration("ackagg", 0, "freeform mode: flow 0 ACK aggregation period")

		chaosArg = flag.String("chaos", "", "run the orchestration chaos self-test with this fault spec (\"default\" for a canned one; see internal/runner/chaos)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("starvesim: %v", err)
	}
	stopProfiles = stop
	defer stopProfiles()

	// An interrupt cancels this context; every mode threads it into its
	// run so the event loop halts at the next tick and exporters flush.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *chaosArg != "" {
		runChaosSelfTest(ctx, *chaosArg, *jobsN)
		return
	}

	observing := *tracePath != "" || *metricsPath != "" || *watchEvery > 0
	if observing && *name == "all" {
		fatalf("starvesim: -trace/-metrics/-watch observe one scenario; run them with a single -scenario name")
	}
	var tcfg *network.TelemetryConfig
	if *telemetry || *watchEvery > 0 {
		tcfg = &network.TelemetryConfig{}
	}
	if *name != "" && *name != "all" && *cca1 == "" {
		// Validate before opening any output file so a typo'd scenario
		// name doesn't leave a stray empty trace behind.
		if _, ok := scenario.Registry[*name]; !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; use -list\n", *name)
			os.Exit(1)
		}
	}

	// sink owns the optional exporters; runs hand it each Result so the
	// metrics file reflects the completed run's registry snapshot.
	sink, err := newObsSink(*tracePath, *metricsPath)
	if err != nil {
		fatalf("starvesim: %v", err)
	}

	// -watch interposes the live view between the run and the sink: the
	// simulation emits through the shared lock, the render goroutine
	// reads (and flushes the trace) under it.
	runProbe := sink.probe()
	var watch *watcher
	if *watchEvery > 0 {
		watch = startWatch(*watchEvery, runProbe, sink.flush)
		runProbe = watch.sync
	}

	guardOpts := guardOptions(*guardOn, *deadline)
	if *fspec != "" && *cca1 == "" {
		usagef("starvesim: -faults applies to freeform (-cca) mode; scenarios define their own impairments")
	}

	if *server != "" && *flows == "" {
		usagef("starvesim: -server runs population mode on a daemon; it needs -flows")
	}
	if *flows != "" {
		if *cca1 != "" || *name != "" {
			usagef("starvesim: -flows is its own mode; drop -cca/-scenario")
		}
		spec := scenario.PopulationSpec{
			Flows: *flows, Topology: *topology,
			RateMbps: *rate, BufferPkts: *buffer, Epsilon: *epsilon,
			Duration: *duration, Seed: *seed,
		}
		if *server != "" {
			if observing || *guardOn || *deadline > 0 {
				usagef("starvesim: -trace/-metrics/-watch/-guard observe local runs; they cannot attach to -server")
			}
			runServerPopulation(ctx, *server, spec)
			return
		}
		pr, err := runPopulation(spec, guardOpts, tcfg, ctx, runProbe)
		if err != nil {
			usagef("starvesim: %v", err)
		}
		fmt.Print(pr.Render())
		finishRun(ctx, sink, watch, pr.Net, "population", pr.Seed)
		return
	}

	if *cca1 != "" {
		d := *duration
		if d <= 0 {
			d = 60 * time.Second
		}
		s := *seed
		if s == 0 {
			s = 2
		}
		res, err := runCustom(customFlags{
			cca1: *cca1, cca2: *cca2,
			rateMbps: *rate, bufferPkts: *buffer,
			rm1: *rm1, rm2: *rm2,
			jitterSpec: *jspec, loss1: *loss1, faultsSpec: *fspec, ackAggregate: *ackPer,
			duration: d, seed: s, guard: guardOpts, telemetry: tcfg, ctx: ctx,
		}, runProbe)
		if err != nil {
			// Everything runCustom can fail on is configuration: a typo'd
			// CCA, jitter, or faults spec, or an invalid network config.
			usagef("starvesim: %v", err)
		}
		fmt.Println(res)
		finishRun(ctx, sink, watch, res, "custom", s)
		return
	}

	if *list || *name == "" {
		fmt.Println("available scenarios:")
		for _, n := range scenario.Names() {
			fmt.Printf("  %s\n", n)
		}
		if *name == "" && !*list {
			fmt.Println("\nrun with -scenario <name> or -scenario all")
		}
		return
	}

	opts := scenario.Opts{Seed: *seed, Duration: *duration, Probe: runProbe, Guard: guardOpts, Telemetry: tcfg, Ctx: ctx}
	if *sweepN > 0 {
		if *name == "" || *name == "all" {
			usagef("starvesim: -sweep needs a single -scenario name")
		}
		if observing {
			usagef("starvesim: -trace/-metrics observe one run; they cannot attach to a -sweep")
		}
		runSweep(ctx, *name, *seed, *sweepN, *sweepJobs, *duration, guardOpts)
		return
	}
	if *name == "all" {
		runAll(ctx, *jobsN, opts)
	}
	res := run(*name, opts)
	finishRun(ctx, sink, watch, res, *name, *seed)
}

// finishRun closes the run's observers in order — live view first (its
// final state line), then the sink (surfacing any export failure as a
// structured guard.KindExport RunError) — and exits non-zero on export or
// guard failure. An interrupted run exits 3 after the drain: the
// exporters flushed what the truncated run produced, and the interrupt —
// not whatever the halted simulation looks like to the guard — is the
// outcome callers should see.
func finishRun(ctx context.Context, sink *obsSink, watch *watcher, res *network.Result, name string, seed int64) {
	if watch != nil {
		watch.halt()
	}
	code := 0
	if rerr := sink.finish(res, name, seed); rerr != nil {
		fmt.Fprintln(os.Stderr, rerr.Error())
		code = 1
	}
	if ctx != nil && ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "starvesim: interrupted; partial outputs flushed")
		stopProfiles()
		os.Exit(3)
	}
	if guardFailed(res) {
		fmt.Fprintln(os.Stderr, res.Guard.String())
		code = 1
	}
	if code != 0 {
		stopProfiles()
		os.Exit(code)
	}
}

// runAll executes every registered scenario, -jobs at a time, and prints
// the reports in sorted scenario order regardless of completion order.
// It exits the process with 1 when any guarded run failed, 3 when the
// batch was interrupted.
func runAll(ctx context.Context, jobs int, opts scenario.Opts) {
	names := scenario.Names()
	outputs := make([]string, len(names))
	failed := make([]bool, len(names))
	_ = runner.ForEach(ctx, jobs, len(names), func(ctx context.Context, i int) error {
		o := opts
		o.Ctx = ctx
		start := time.Now()
		res := scenario.Registry[names[i]](o)
		out := fmt.Sprintf("%s(took %v)\n\n", res, time.Since(start).Round(time.Millisecond))
		if guardFailed(res.Net) {
			out += res.Net.Guard.String() + "\n"
			failed[i] = true
		}
		outputs[i] = out
		return nil
	})
	code := 0
	for i, out := range outputs {
		fmt.Print(out)
		if failed[i] {
			code = 1
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "starvesim: interrupted; completed scenarios printed")
		code = 3
	}
	stopProfiles()
	os.Exit(code)
}

// runSweep runs one scenario across n consecutive seeds and prints one
// observables line per seed, in seed order.
func runSweep(ctx context.Context, name string, baseSeed int64, n, jobs int, duration time.Duration, guardOpts *guard.Options) {
	if baseSeed == 0 {
		baseSeed = 2 // the documented reference realization
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = baseSeed + int64(i)
	}
	results, err := scenario.SeedSweep(ctx, name, seeds, jobs,
		scenario.Opts{Duration: duration, Guard: guardOpts})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "starvesim: interrupted")
			stopProfiles()
			os.Exit(3)
		}
		fatalf("starvesim: %v", err)
	}
	fmt.Printf("%s across seeds %d..%d:\n", name, seeds[0], seeds[n-1])
	code := 0
	for i, res := range results {
		fmt.Printf("  seed %d: %s\n", seeds[i], observablesLine(res))
		if guardFailed(res.Net) {
			fmt.Print(res.Net.Guard.String())
			code = 1
		}
	}
	stopProfiles()
	os.Exit(code)
}

// observablesLine renders a result's named quantities on one line, keys
// sorted so sweep output is diffable.
func observablesLine(res *scenario.Result) string {
	keys := make([]string, 0, len(res.Observables))
	for k := range res.Observables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.4g", k, res.Observables[k])
	}
	return strings.Join(parts, " ")
}

func run(name string, opts scenario.Opts) *network.Result {
	fn := scenario.Registry[name]
	start := time.Now()
	res := fn(opts)
	fmt.Printf("%s(took %v)\n\n", res, time.Since(start).Round(time.Millisecond))
	return res.Net
}

// guardOptions builds the run-guard configuration from the CLI flags; nil
// when the layer is disabled.
func guardOptions(on bool, deadline time.Duration) *guard.Options {
	if !on && deadline <= 0 {
		return nil
	}
	return &guard.Options{WallClock: deadline}
}

func guardFailed(res *network.Result) bool {
	return res != nil && res.Guard != nil && !res.Guard.Ok()
}

// obsSink bundles the CLI's observability outputs: an optional JSONL event
// trace (streamed during the run) and an optional Prometheus metrics file
// (written from the Result's registry snapshot after it).
type obsSink struct {
	traceFile   *os.File
	traceWriter *obs.JSONLWriter
	metricsPath string
}

func newObsSink(tracePath, metricsPath string) (*obsSink, error) {
	s := &obsSink{metricsPath: metricsPath}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		s.traceFile = f
		s.traceWriter = obs.NewJSONLWriter(f)
	}
	return s, nil
}

func (s *obsSink) probe() obs.Probe {
	if s.traceWriter == nil {
		return nil
	}
	return s.traceWriter
}

// flush pushes buffered trace events to disk mid-run (the -watch tick).
// Errors are sticky in the writer and surface at finish.
func (s *obsSink) flush() error {
	if s.traceWriter == nil {
		return nil
	}
	return s.traceWriter.Flush()
}

// finish flushes the event trace and writes the metrics snapshot. res may
// be nil (closed-form scenarios have no network run). Export failures —
// including a write error that struck mid-run and stuck in the JSONL
// writer — come back as a structured guard.KindExport RunError: the
// simulation completed, but its recorded stream is incomplete.
func (s *obsSink) finish(res *network.Result, name string, seed int64) *guard.RunError {
	exportErr := func(what string, err error) *guard.RunError {
		return &guard.RunError{
			Scenario: name, Seed: seed, Kind: guard.KindExport,
			Msg: fmt.Sprintf("%s: %v", what, err),
		}
	}
	if s.traceWriter != nil {
		err := s.traceWriter.Close()
		if cerr := s.traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return exportErr("writing trace", err)
		}
	}
	if s.metricsPath == "" {
		return nil
	}
	if res == nil {
		fatalf("starvesim: -metrics: scenario produced no network run")
	}
	f, err := os.Create(s.metricsPath)
	if err != nil {
		return exportErr("creating metrics file", err)
	}
	defer f.Close()
	if err := obs.WritePrometheus(f, &res.Obs); err != nil {
		return exportErr("writing metrics", err)
	}
	if res.Telemetry != nil {
		if err := network.WriteTelemetryPrometheus(f, res.Telemetry); err != nil {
			return exportErr("writing telemetry metrics", err)
		}
	}
	return nil
}
