// Command starvesim runs the paper's experiments from the command line.
//
// Usage:
//
//	starvesim -list
//	starvesim -scenario bbr-two [-seed 2] [-duration 60s]
//	starvesim -scenario all
//
// Each scenario prints the paper's claimed numbers next to the measured
// ones. Exit status is 0 unless the scenario name is unknown.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"starvation/internal/scenario"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available scenarios")
		name     = flag.String("scenario", "", "scenario to run (or \"all\")")
		seed     = flag.Int64("seed", 0, "RNG seed (0 = reference realization)")
		duration = flag.Duration("duration", 0, "override run duration")

		// Freeform mode: -cca selects it; everything else is optional.
		cca1   = flag.String("cca", "", "freeform mode: CCA for flow 0 (e.g. vegas, bbr)")
		cca2   = flag.String("cca2", "", "freeform mode: CCA for flow 1 (empty = single flow)")
		rate   = flag.Float64("rate", 48, "freeform mode: bottleneck Mbit/s")
		buffer = flag.Int("buffer", 0, "freeform mode: buffer in packets (0 = infinite)")
		rm1    = flag.Duration("rm", 50*time.Millisecond, "freeform mode: flow 0 propagation RTT")
		rm2    = flag.Duration("rm2", 50*time.Millisecond, "freeform mode: flow 1 propagation RTT")
		jspec  = flag.String("jitter", "", "freeform mode: flow 0 jitter, kind:value (const|uniform|aggregate|burst:5ms, spike:10ms/100ms)")
		loss1  = flag.Float64("loss", 0, "freeform mode: flow 0 random loss probability")
		ackPer = flag.Duration("ackagg", 0, "freeform mode: flow 0 ACK aggregation period")
	)
	flag.Parse()

	if *cca1 != "" {
		d := *duration
		if d <= 0 {
			d = 60 * time.Second
		}
		s := *seed
		if s == 0 {
			s = 2
		}
		err := runCustom(customFlags{
			cca1: *cca1, cca2: *cca2,
			rateMbps: *rate, bufferPkts: *buffer,
			rm1: *rm1, rm2: *rm2,
			jitterSpec: *jspec, loss1: *loss1, ackAggregate: *ackPer,
			duration: d, seed: s,
		})
		if err != nil {
			fatalf("starvesim: %v", err)
		}
		return
	}

	if *list || *name == "" {
		fmt.Println("available scenarios:")
		for _, n := range scenario.Names() {
			fmt.Printf("  %s\n", n)
		}
		if *name == "" && !*list {
			fmt.Println("\nrun with -scenario <name> or -scenario all")
		}
		return
	}

	opts := scenario.Opts{Seed: *seed, Duration: *duration}
	if *name == "all" {
		for _, n := range scenario.Names() {
			run(n, opts)
		}
		return
	}
	fn, ok := scenario.Registry[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q; use -list\n", *name)
		os.Exit(1)
	}
	_ = fn
	run(*name, opts)
}

func run(name string, opts scenario.Opts) {
	fn := scenario.Registry[name]
	start := time.Now()
	res := fn(opts)
	fmt.Printf("%s(took %v)\n\n", res, time.Since(start).Round(time.Millisecond))
}
