package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"starvation/internal/scenario"
	"starvation/internal/service"
)

// serverJobName is the job name the client submits under; the artifact
// fetch after the stream uses the same name.
const serverJobName = "cli"

// runServerPopulation runs a population experiment on a remote starved
// daemon instead of locally: it submits the spec as a one-job batch,
// streams the batch's events to stderr, then prints the job's artifact to
// stdout. The artifact is byte-identical to a local `-flows` run of the
// same spec — both paths render through core.PopulationResult.Render —
// so scripts can switch between local and remote execution freely.
//
// Exit status matches the local mode's contract: 0 on success, 1 on
// runtime failure (unreachable daemon, failed batch, saturated queue),
// 2 when the daemon rejects the spec as malformed (HTTP 400 carries the
// same message a local run exits 2 with), 3 after an interrupt (the
// batch is cancelled on the daemon best-effort).
func runServerPopulation(ctx context.Context, addr string, spec scenario.PopulationSpec) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	req := service.BatchRequest{
		Client: "starvesim",
		Jobs:   []service.JobRequest{{Name: serverJobName, PopulationSpec: spec}},
	}
	// Duration travels as DurationSec: PopulationSpec.Duration does not
	// serialize (it is a CLI-side time.Duration).
	if spec.Duration > 0 {
		req.Jobs[0].DurationSec = spec.Duration.Seconds()
		req.Jobs[0].PopulationSpec.Duration = 0
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatalf("starvesim: encoding batch: %v", err)
	}

	st := submitBatch(ctx, base, body)
	fmt.Fprintf(os.Stderr, "starvesim: batch %s admitted by %s\n", st.ID, base)

	final := streamEvents(ctx, base, st.ID)
	if ctx.Err() != nil {
		cancelBatch(base, st.ID)
		fmt.Fprintln(os.Stderr, "starvesim: interrupted; batch cancelled on daemon")
		stopProfiles()
		os.Exit(3)
	}
	switch final {
	case "batch-done":
	case "batch-cancelled":
		fatalf("starvesim: batch %s was cancelled on the daemon", st.ID)
	case "batch-failed":
		fatalf("starvesim: batch %s failed; see the event stream above", st.ID)
	default:
		fatalf("starvesim: event stream for %s ended without a terminal event (daemon drained?)", st.ID)
	}

	artifact := fetchArtifact(ctx, base, st.ID)
	fmt.Print(string(artifact))
}

// httpError is the daemon's non-2xx JSON body.
type httpError struct {
	Error string `json:"error"`
}

// submitBatch POSTs the batch and maps the daemon's status codes onto the
// CLI's exit conventions. 400 is a malformed spec — the body carries the
// exact message a local run would exit 2 with, so it goes through usagef.
func submitBatch(ctx context.Context, base string, body []byte) service.BatchStatus {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/batches", bytes.NewReader(body))
	if err != nil {
		fatalf("starvesim: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		fatalf("starvesim: submitting batch: %v", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st service.BatchStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			fatalf("starvesim: decoding admission response: %v", err)
		}
		return st
	case http.StatusBadRequest:
		usagef("starvesim: %s", readError(resp.Body))
	case http.StatusTooManyRequests:
		fatalf("starvesim: daemon queue is full (retry after %ss): %s",
			resp.Header.Get("Retry-After"), readError(resp.Body))
	case http.StatusServiceUnavailable:
		fatalf("starvesim: daemon is draining; try another instance")
	default:
		fatalf("starvesim: daemon returned %s: %s", resp.Status, readError(resp.Body))
	}
	panic("unreachable")
}

// readError extracts the daemon's JSON error message, falling back to the
// raw body.
func readError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 1<<16))
	var e httpError
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// streamEvents follows the batch's JSONL event stream, mirroring each
// event to stderr as a human-readable progress line, and returns the
// terminal event type ("" if the stream ended without one).
func streamEvents(ctx context.Context, base, id string) string {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/batches/"+id+"/events", nil)
	if err != nil {
		fatalf("starvesim: %v", err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return ""
		}
		fatalf("starvesim: streaming events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("starvesim: event stream returned %s: %s", resp.Status, readError(resp.Body))
	}
	final := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "starvesim: %s\n", eventLine(ev))
		if strings.HasPrefix(ev.Type, "batch-") {
			final = ev.Type
		}
	}
	return final
}

// eventLine renders one event for the stderr progress feed.
func eventLine(ev service.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", ev.Batch, ev.Type)
	if ev.Job != "" {
		fmt.Fprintf(&b, " %s", ev.Job)
	}
	if ev.Attempt > 1 {
		fmt.Fprintf(&b, " (attempt %d)", ev.Attempt)
	}
	fmt.Fprintf(&b, " %d/%d", ev.Done, ev.Total)
	if ev.Err != "" {
		fmt.Fprintf(&b, ": %s", ev.Err)
	}
	return b.String()
}

// fetchArtifact retrieves the finished job's rendered output.
func fetchArtifact(ctx context.Context, base, id string) []byte {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/batches/"+id+"/artifacts/"+serverJobName, nil)
	if err != nil {
		fatalf("starvesim: %v", err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		fatalf("starvesim: fetching artifact: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("starvesim: artifact fetch returned %s: %s", resp.Status, readError(resp.Body))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("starvesim: reading artifact: %v", err)
	}
	return data
}

// cancelBatch best-effort cancels the batch after a client-side
// interrupt, so the daemon doesn't keep simulating for a reader that
// left. Uses its own short deadline: the command's context is already
// cancelled.
func cancelBatch(base, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/batches/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := http.DefaultClient.Do(hreq); err == nil {
		resp.Body.Close()
	}
}
