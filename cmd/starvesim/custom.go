package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"starvation/internal/cca"
	"starvation/internal/endpoint"
	"starvation/internal/guard"
	"starvation/internal/netem/faults"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/units"

	// Register every algorithm.
	_ "starvation/internal/cca/algo1"
	_ "starvation/internal/cca/allegro"
	_ "starvation/internal/cca/bbr"
	_ "starvation/internal/cca/constwnd"
	_ "starvation/internal/cca/copa"
	_ "starvation/internal/cca/cubic"
	_ "starvation/internal/cca/fast"
	_ "starvation/internal/cca/ledbat"
	_ "starvation/internal/cca/reno"
	_ "starvation/internal/cca/vegas"
	_ "starvation/internal/cca/verus"
	_ "starvation/internal/cca/vivace"
)

// customFlags describe the freeform experiment builder: any registered CCA
// pair, a bottleneck, per-flow jitter, loss, and ACK policies.
type customFlags struct {
	cca1, cca2   string
	rateMbps     float64
	bufferPkts   int
	rm1, rm2     time.Duration
	jitterSpec   string // applied to flow 1: kind:value, e.g. "uniform:5ms"
	loss1        float64
	faultsSpec   string        // flow 0 impairments + link schedule, see faults.ParseProfile
	ackAggregate time.Duration // flow 1 ACK aggregation period
	duration     time.Duration
	seed         int64
	guard        *guard.Options           // nil disables the run-guard layer
	telemetry    *network.TelemetryConfig // nil disables the flight recorder
	ctx          context.Context          // nil runs uninterruptible
}

// runCustom assembles and runs the freeform scenario, streaming events to
// probe if non-nil.
func runCustom(f customFlags, probe obs.Probe) (*network.Result, error) {
	if f.cca1 == "" {
		return nil, fmt.Errorf("custom mode needs -cca")
	}
	mk := func(name string, seed int64) (cca.Algorithm, error) {
		fac := cca.Lookup(name)
		if fac == nil {
			return nil, fmt.Errorf("unknown CCA %q (known: %s)",
				name, strings.Join(cca.Names(), ", "))
		}
		return fac(endpoint.DefaultMSS, rand.New(rand.NewSource(seed))), nil
	}

	alg1, err := mk(f.cca1, f.seed*11+1)
	if err != nil {
		return nil, err
	}
	spec1 := network.FlowSpec{Name: f.cca1 + "-0", Alg: alg1, Rm: f.rm1, LossProb: f.loss1}
	if f.jitterSpec != "" {
		pol, err := parseJitter(f.jitterSpec, f.seed)
		if err != nil {
			return nil, err
		}
		spec1.FwdJitter = pol
	}
	if f.ackAggregate > 0 {
		spec1.Ack = endpoint.AckConfig{AggregatePeriod: f.ackAggregate}
	}
	var rateSched *faults.RateSchedule
	if f.faultsSpec != "" {
		prof, err := faults.ParseProfile(f.faultsSpec)
		if err != nil {
			return nil, err
		}
		if !prof.Flow.Empty() {
			spec1.Faults = &prof.Flow
		}
		rateSched = prof.Link
	}

	specs := []network.FlowSpec{spec1}
	if f.cca2 != "" {
		alg2, err := mk(f.cca2, f.seed*11+2)
		if err != nil {
			return nil, err
		}
		specs = append(specs, network.FlowSpec{Name: f.cca2 + "-1", Alg: alg2, Rm: f.rm2})
	}

	cfg := network.Config{
		Rate:         units.Mbps(f.rateMbps),
		BufferBytes:  f.bufferPkts * endpoint.DefaultMSS,
		RateSchedule: rateSched,
		Guard:        f.guard,
		Seed:         f.seed,
		Probe:        probe,
		Telemetry:    f.telemetry,
		Ctx:          f.ctx,
	}
	// NewChecked, not New: a malformed CLI config is a usage error the
	// caller reports in one line (exit 2), not a panic trace.
	n, err := network.NewChecked(cfg, specs...)
	if err != nil {
		return nil, err
	}
	return n.Run(f.duration), nil
}

// parseJitter turns "kind:value" into a jitter policy with this run's
// derived rng (see jitter.Parse for the grammar).
func parseJitter(spec string, seed int64) (jitter.Policy, error) {
	return jitter.Parse(spec, rand.New(rand.NewSource(seed*101+3)))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	stopProfiles()
	os.Exit(1)
}

// usagef reports a malformed configuration (bad flag value, invalid
// network spec) with the conventional usage-error status.
func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	stopProfiles()
	os.Exit(2)
}
