package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starvation/internal/guard"
	"starvation/internal/runner"
	"starvation/internal/runner/chaos"
)

// withDirs points the output flags at temp dirs for one test.
func withDirs(t *testing.T) (out, obs string) {
	t.Helper()
	out, obs = t.TempDir(), t.TempDir()
	oldOut, oldObs := *outDir, *obsDir
	*outDir, *obsDir = out, obs
	t.Cleanup(func() { *outDir, *obsDir = oldOut, oldObs })
	return out, obs
}

// fakeSections builds a deterministic synthetic batch: every section
// emits summary rows, console text, and data files derived from its ID,
// and sleeps a varying amount so parallel completion order scrambles.
func fakeSections(n int) []batchSection {
	secs := make([]batchSection, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("S%02d", i)
		sleep := time.Duration((n-i)%4) * time.Millisecond
		secs[i] = batchSection{id, func(_ context.Context, r *reporter) {
			time.Sleep(sleep)
			r.section(id, "synthetic section "+id)
			r.row("- value %s = %d", id, len(id)*7)
			r.print("console-only plot for " + id)
			r.save(id+"_data.csv", func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "id,sq\n%s,%d\n", id, i*i)
				return err
			})
		}}
	}
	return secs
}

// snapshotTree reads every regular file under dir into a map keyed by
// relative path, skipping the cache (whose entry mtimes differ by design).
func snapshotTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	files := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".cache" || d.Name() == ".chaos" {
				return fs.SkipDir
			}
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		files[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("snapshot %s: %v", dir, err)
	}
	return files
}

// runDriver executes the full driver path — jobs, pool, errors.json,
// assemble — exactly as main does, into the current *outDir.
func runDriver(t *testing.T, secs []batchSection, w io.Writer, pool *runner.Pool) ([]runner.JobResult, guard.Manifest) {
	t.Helper()
	results := pool.Run(context.Background(), sectionJobs(secs, nil))
	man := collectErrors(results)
	if err := man.WriteFile(filepath.Join(*outDir, "errors.json")); err != nil {
		t.Fatalf("errors.json: %v", err)
	}
	if err := assemble(w, results); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return results, man
}

// TestParallelMatchesSequential is the parity contract of the tentpole:
// a batch at -jobs 8 produces a byte-identical output tree (summary.md,
// errors.json, every data file) and console transcript to the same batch
// at -jobs 1.
func TestParallelMatchesSequential(t *testing.T) {
	oldNow := timeNow
	timeNow = func() time.Time { return time.Date(2022, 8, 22, 9, 0, 0, 0, time.UTC) }
	defer func() { timeNow = oldNow }()

	secs := fakeSections(12)
	run := func(jobs int) (map[string]string, string) {
		out, _ := withDirs(t)
		var console strings.Builder
		runDriver(t, secs, &console, &runner.Pool{Jobs: jobs})
		return snapshotTree(t, out), console.String()
	}
	seqTree, seqConsole := run(1)
	parTree, parConsole := run(8)

	if len(seqTree) != len(parTree) {
		t.Fatalf("tree sizes differ: sequential %d files, parallel %d", len(seqTree), len(parTree))
	}
	for rel, want := range seqTree {
		got, ok := parTree[rel]
		if !ok {
			t.Errorf("parallel run missing %s", rel)
			continue
		}
		if got != want {
			t.Errorf("%s differs between -jobs 1 and -jobs 8:\n seq: %q\n par: %q", rel, want, got)
		}
	}
	if seqConsole != parConsole {
		t.Errorf("console transcript differs between -jobs 1 and -jobs 8")
	}
	if len(seqTree) < 14 { // 12 data files + summary.md + errors.json
		t.Errorf("sequential tree has only %d files: %v", len(seqTree), seqTree)
	}
}

// TestWarmCacheRerun checks the caching contract: a second identical
// batch re-simulates zero sections yet reproduces the output tree
// byte-for-byte.
func TestWarmCacheRerun(t *testing.T) {
	oldNow := timeNow
	timeNow = func() time.Time { return time.Date(2022, 8, 22, 9, 0, 0, 0, time.UTC) }
	defer func() { timeNow = oldNow }()

	out, _ := withDirs(t)
	cache := &runner.Cache{Dir: filepath.Join(out, ".cache")}
	secs := fakeSections(6)

	cold := &runner.Pool{Jobs: 2, Cache: cache}
	runDriver(t, secs, io.Discard, cold)
	coldTree := snapshotTree(t, out)
	if st := cold.Stats(); st.Executed != 6 || st.CacheHits != 0 {
		t.Fatalf("cold stats = %+v, want 6 executed", st)
	}

	warm := &runner.Pool{Jobs: 2, Cache: cache}
	runDriver(t, secs, io.Discard, warm)
	if st := warm.Stats(); st.Executed != 0 || st.CacheHits != 6 {
		t.Errorf("warm stats = %+v, want 0 executed 6 cached", st)
	}
	warmTree := snapshotTree(t, out)
	for rel, want := range coldTree {
		if warmTree[rel] != want {
			t.Errorf("%s differs after warm rerun", rel)
		}
	}
}

// TestPartialThenFullBatch checks resume granularity at the driver level:
// after a batch restricted by -only, a full batch executes exactly the
// sections the first run skipped.
func TestPartialThenFullBatch(t *testing.T) {
	out, _ := withDirs(t)
	cache := &runner.Cache{Dir: filepath.Join(out, ".cache")}
	manPath := filepath.Join(out, "manifest.json")
	secs := fakeSections(5)

	partial := &runner.Pool{Jobs: 2, Cache: cache, Manifest: runner.LoadManifest(manPath)}
	partial.Run(context.Background(), sectionJobs(secs, map[string]bool{"S00": true, "S03": true}))
	if st := partial.Stats(); st.Executed != 2 {
		t.Fatalf("partial stats = %+v, want 2 executed", st)
	}

	full := &runner.Pool{Jobs: 2, Cache: cache, Manifest: runner.LoadManifest(manPath)}
	runDriver(t, secs, io.Discard, full)
	if st := full.Stats(); st.Executed != 3 || st.CacheHits != 2 {
		t.Errorf("full stats = %+v, want 3 executed 2 cached", st)
	}
	if full.Manifest.Len() != 5 {
		t.Errorf("manifest records %d jobs, want 5", full.Manifest.Len())
	}
}

// TestBatchDegradesGracefully forces one panicking section and one stuck
// section into a batch and checks the remaining sections still run, the
// failures land in errors.json with the right kinds, and the assembled
// summary carries the healthy sections.
func TestBatchDegradesGracefully(t *testing.T) {
	out, _ := withDirs(t)
	release := make(chan struct{})
	defer close(release)
	secs := []batchSection{
		{"ok-before", func(_ context.Context, r *reporter) { r.row("- ok-before ran") }},
		{"boom", func(context.Context, *reporter) { panic("forced failure") }},
		{"stuck", func(context.Context, *reporter) { <-release }},
		{"ok-after", func(_ context.Context, r *reporter) { r.row("- ok-after ran") }},
	}
	pool := &runner.Pool{Jobs: 1, JobDeadline: 50 * time.Millisecond, Grace: 50 * time.Millisecond}
	_, man := runDriver(t, secs, io.Discard, pool)

	if len(man.Errors) != 2 {
		t.Fatalf("manifest has %d errors, want 2: %+v", len(man.Errors), man.Errors)
	}
	if man.Errors[0].Scenario != "boom" || man.Errors[0].Kind != guard.KindPanic {
		t.Errorf("first error = %+v, want scenario boom kind panic", man.Errors[0])
	}
	if !strings.Contains(man.Errors[0].Msg, "forced failure") {
		t.Errorf("panic message %q does not carry the panic value", man.Errors[0].Msg)
	}
	if man.Errors[0].Stack == "" {
		t.Errorf("panic error has no stack trace")
	}
	if man.Errors[1].Scenario != "stuck" || man.Errors[1].Kind != guard.KindDeadline {
		t.Errorf("second error = %+v, want scenario stuck kind deadline", man.Errors[1])
	}

	sum, err := os.ReadFile(filepath.Join(out, "summary.md"))
	if err != nil {
		t.Fatalf("summary.md: %v", err)
	}
	for _, want := range []string{"ok-before ran", "ok-after ran"} {
		if !strings.Contains(string(sum), want) {
			t.Errorf("summary missing %q: sections after a failure must still run", want)
		}
	}

	data, err := os.ReadFile(filepath.Join(out, "errors.json"))
	if err != nil {
		t.Fatalf("errors.json: %v", err)
	}
	var got guard.Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("errors.json is not valid JSON: %v", err)
	}
	if len(got.Errors) != 2 {
		t.Fatalf("round-tripped manifest has %d errors, want 2", len(got.Errors))
	}
}

// TestCancelledSectionNotCached pins the truncation contract: a section
// whose context is cancelled mid-run halts its simulations early, so its
// (truncated) output must be recorded as a failure — never written to
// the output tree or the cache — and must re-execute on the next batch.
func TestCancelledSectionNotCached(t *testing.T) {
	out, _ := withDirs(t)
	cache := &runner.Cache{Dir: filepath.Join(out, ".cache")}
	batchCtx, interrupt := context.WithCancel(context.Background())
	defer interrupt()
	secs := []batchSection{
		{"truncated", func(ctx context.Context, r *reporter) {
			r.section("truncated", "halts mid-run")
			interrupt()  // the user hits Ctrl-C mid-section
			<-ctx.Done() // the sim event loop notices and returns early
			r.row("- partial data from a truncated run")
		}},
	}
	pool := &runner.Pool{Jobs: 1, Cache: cache}
	results := pool.Run(batchCtx, sectionJobs(secs, nil))
	if e := results[0].Err; e == nil || e.Kind != guard.KindCancelled {
		t.Fatalf("truncated section = %+v, want a cancellation RunError", e)
	}
	if man := collectErrors(results); len(man.Errors) != 1 {
		t.Errorf("errors manifest has %d entries, want 1", len(man.Errors))
	}

	// A fresh batch over the same cache must re-simulate, not restore.
	again := &runner.Pool{Jobs: 1, Cache: cache}
	res2 := again.Run(context.Background(), sectionJobs([]batchSection{
		{"truncated", func(_ context.Context, r *reporter) {
			r.section("truncated", "halts mid-run")
			r.row("- complete data this time")
		}},
	}, nil))
	if res2[0].Err != nil || res2[0].Cached {
		t.Errorf("re-run = %+v, want fresh execution (truncated result must not have been cached)", res2[0])
	}
}

// TestBatchCleanManifest checks a failure-free batch writes an explicit
// empty error list, distinguishing "clean" from "never ran".
func TestBatchCleanManifest(t *testing.T) {
	out, _ := withDirs(t)
	secs := []batchSection{
		{"fine", func(_ context.Context, r *reporter) { r.row("- fine") }},
	}
	_, man := runDriver(t, secs, io.Discard, &runner.Pool{Jobs: 1})
	if len(man.Errors) != 0 {
		t.Fatalf("unexpected errors: %+v", man.Errors)
	}
	data, err := os.ReadFile(filepath.Join(out, "errors.json"))
	if err != nil {
		t.Fatalf("errors.json: %v", err)
	}
	if !strings.Contains(string(data), `"errors": []`) {
		t.Errorf("empty manifest = %q, want explicit empty errors list", data)
	}
}

// TestReporterSaveRecoverable checks save failures surface as panics (so
// the runner can record them) rather than killing the process.
func TestReporterSaveRecoverable(t *testing.T) {
	withDirs(t)
	secs := []batchSection{
		{"save-fail", func(_ context.Context, r *reporter) {
			r.save("x.csv", func(io.Writer) error { return fmt.Errorf("serialization broke") })
		}},
	}
	results := (&runner.Pool{Jobs: 1}).Run(context.Background(), sectionJobs(secs, nil))
	e := results[0].Err
	if e == nil || e.Kind != guard.KindPanic || !strings.Contains(e.Msg, "serialization broke") {
		t.Fatalf("failed save: got %+v, want captured panic", e)
	}
}

// TestSectionsFilter checks -only filtering skips unwanted sections
// before any job is built.
func TestSectionsFilter(t *testing.T) {
	withDirs(t)
	var ran []string
	secs := []batchSection{
		{"a", func(context.Context, *reporter) { ran = append(ran, "a") }},
		{"b", func(context.Context, *reporter) { ran = append(ran, "b") }},
	}
	jobs := sectionJobs(secs, map[string]bool{"b": true})
	if len(jobs) != 1 || jobs[0].ID != "b" {
		t.Fatalf("filtered jobs = %+v, want [b]", jobs)
	}
	(&runner.Pool{Jobs: 1}).Run(context.Background(), jobs)
	if len(ran) != 1 || ran[0] != "b" {
		t.Fatalf("ran %v, want [b]", ran)
	}
}

// TestObsFilesRouted checks a section's Obs-flagged files land in the
// -obs directory while plain files land in -out.
func TestObsFilesRouted(t *testing.T) {
	out, obsOut := withDirs(t)
	secs := []batchSection{
		{"routed", func(_ context.Context, r *reporter) {
			r.save("plain.csv", func(w io.Writer) error { _, err := io.WriteString(w, "a,b\n"); return err })
			r.files = append(r.files, artifactFile{Name: "trace_events.jsonl", Obs: true, Data: []byte("{}\n")})
		}},
	}
	runDriver(t, secs, io.Discard, &runner.Pool{Jobs: 1})
	if _, err := os.Stat(filepath.Join(out, "plain.csv")); err != nil {
		t.Errorf("plain file not in -out: %v", err)
	}
	if _, err := os.Stat(filepath.Join(obsOut, "trace_events.jsonl")); err != nil {
		t.Errorf("obs file not in -obs: %v", err)
	}
}

// TestChaosParity is the capstone robustness invariant: a batch run
// under injected orchestration faults — failing, panicking, and hanging
// section bodies, corrupted cache entries, a truncated manifest — must
// converge, through retries and quarantine, to an output tree and
// console transcript byte-identical to the fault-free run.
func TestChaosParity(t *testing.T) {
	oldNow := timeNow
	timeNow = func() time.Time { return time.Date(2022, 8, 22, 9, 0, 0, 0, time.UTC) }
	defer func() { timeNow = oldNow }()

	secs := fakeSections(12)

	// Fault-free baseline.
	outClean, _ := withDirs(t)
	var cleanConsole strings.Builder
	runDriver(t, secs, &cleanConsole, &runner.Pool{Jobs: 4})
	cleanTree := snapshotTree(t, outClean)

	// Chaos run: a cold pass under body faults, then sabotage of the
	// persisted state, then a warm pass that must still converge.
	spec, err := chaos.Parse("seed:1;fail:0.25;panic:0.15;hang:0.15,50ms;slow:0.2,2ms;corrupt:2;truncate-manifest:1")
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(spec)
	outChaos, _ := withDirs(t)
	cacheDir := filepath.Join(outChaos, ".cache")
	maniPath := filepath.Join(t.TempDir(), "manifest.json")
	retry := runner.RetryPolicy{MaxAttempts: spec.RetryAttempts(), Seed: spec.Seed, Base: time.Millisecond}

	var events []runner.ProgressEvent
	progress := func(ev runner.ProgressEvent) { events = append(events, ev) } // pool serializes callbacks

	cold := &runner.Pool{Jobs: 4, Cache: &runner.Cache{Dir: cacheDir},
		Manifest: runner.LoadManifest(maniPath), Retry: retry, Progress: progress}
	coldResults := cold.Run(context.Background(), in.Wrap(sectionJobs(secs, nil)))
	if man := collectErrors(coldResults); len(man.Errors) != 0 {
		t.Fatalf("cold chaos pass failed terminally: %+v", man.Errors)
	}

	if _, err := in.CorruptCache(cacheDir); err != nil {
		t.Fatalf("CorruptCache: %v", err)
	}
	if cut, err := in.TruncateManifest(maniPath); err != nil || !cut {
		t.Fatalf("TruncateManifest = %v, %v", cut, err)
	}
	manifest := runner.LoadManifest(maniPath)
	if manifest.RecoveredFrom == "" {
		t.Errorf("truncated manifest was not salvaged")
	}

	warm := &runner.Pool{Jobs: 4, Cache: &runner.Cache{Dir: cacheDir},
		Manifest: manifest, Retry: retry, Progress: progress}
	warmResults := warm.Run(context.Background(), in.Wrap(sectionJobs(secs, nil)))
	man := collectErrors(warmResults)
	if err := man.WriteFile(filepath.Join(outChaos, "errors.json")); err != nil {
		t.Fatal(err)
	}
	var chaosConsole strings.Builder
	if err := assemble(&chaosConsole, warmResults); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if len(man.Errors) != 0 {
		t.Fatalf("warm chaos pass failed terminally: %+v", man.Errors)
	}

	// Parity: the chaos tree and transcript match the fault-free run
	// byte for byte.
	chaosTree := snapshotTree(t, outChaos)
	if len(chaosTree) != len(cleanTree) {
		t.Errorf("tree sizes differ: clean %d files, chaos %d", len(cleanTree), len(chaosTree))
	}
	for rel, want := range cleanTree {
		if got, ok := chaosTree[rel]; !ok {
			t.Errorf("chaos run missing %s", rel)
		} else if got != want {
			t.Errorf("%s differs between the fault-free and chaos runs", rel)
		}
	}
	if chaosConsole.String() != cleanConsole.String() {
		t.Errorf("console transcript differs between the fault-free and chaos runs")
	}

	// The faults must actually have fired: enough body failures to cover
	// >=10%% of the batch, at least one hang, at least one corruption.
	counts := in.Counts()
	if in.BodyFaults() < 2 {
		t.Errorf("only %d injected body faults over 12 sections, want >= 2 (10%% of the batch): %v",
			in.BodyFaults(), counts)
	}
	if counts["hang"] < 1 {
		t.Errorf("no hung job injected: %v", counts)
	}
	if counts["corrupt"] < 1 {
		t.Errorf("no cache corruption injected: %v", counts)
	}

	// ... and be visible in progress events and the Prometheus counters.
	retriesSeen := 0
	for _, ev := range events {
		if ev.Kind == runner.ProgressRetry {
			retriesSeen++
			if ev.Err == nil || ev.Attempt < 1 {
				t.Errorf("retry event carries no failure context: %+v", ev)
			}
		}
	}
	if retriesSeen == 0 {
		t.Errorf("no retry progress events despite %d injected faults", in.BodyFaults())
	}
	if st := warm.Stats(); st.CacheCorrupt < 1 {
		t.Errorf("warm stats = %+v, want quarantined cache entries counted", st)
	}
	var prom strings.Builder
	if err := warm.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"starvesim_runner_retries_total", "starvesim_runner_cache_corrupt_total"} {
		if !strings.Contains(prom.String(), metric) {
			t.Errorf("Prometheus export missing %s", metric)
		}
	}
}

// TestListSectionsAnnotated checks -list surfaces the manifest: outcome
// and attempt counts per section, plus the salvage note after damage.
func TestListSectionsAnnotated(t *testing.T) {
	m := runner.LoadManifest("") // in-memory
	if err := m.Record("F1", "aaaa", runner.StatusDone, nil, 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Record("F3", "bbbb", runner.StatusFailed,
		&guard.RunError{Scenario: "F3", Kind: guard.KindDeadline, Msg: "slow"}, 1, nil); err != nil {
		t.Fatal(err)
	}
	m.RecoveredFrom = "recovered 2 complete entries from damaged manifest (99 bytes)"

	var buf strings.Builder
	listSections(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"# manifest: recovered 2 complete entries",
		"F1\t[done, 3 attempts]",
		"F3\t[failed]",
		"X-POP\n", // unrecorded sections list bare
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestSectionKeySensitivity pins what invalidates a section's cache
// entry: the -quick flag does, the output directory does not.
func TestSectionKeySensitivity(t *testing.T) {
	withDirs(t)
	base := sectionKey("F1").Fingerprint(0)

	oldQuick := *quick
	*quick = !*quick
	quickFP := sectionKey("F1").Fingerprint(0)
	*quick = oldQuick
	if quickFP == base {
		t.Errorf("-quick does not change the section fingerprint")
	}

	oldOut := *outDir
	*outDir = filepath.Join(*outDir, "elsewhere")
	outFP := sectionKey("F1").Fingerprint(0)
	*outDir = oldOut
	if outFP != base {
		t.Errorf("-out changed the section fingerprint; artifacts are location-independent and must stay cached")
	}
}
