package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starvation/internal/guard"
)

// TestBatchDegradesGracefully forces one panicking section and one
// deadline-exceeding section into a batch and checks the remaining
// sections still run, the failures land in the manifest with the right
// kinds, and the manifest serializes to a readable errors.json.
func TestBatchDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	oldOut := *outDir
	*outDir = dir
	defer func() { *outDir = oldOut }()

	release := make(chan struct{})
	defer close(release)
	r := &reporter{}
	secs := []batchSection{
		{"ok-before", func(r *reporter) { r.row("- ok-before ran") }},
		{"boom", func(*reporter) { panic("forced failure") }},
		{"stuck", func(*reporter) { <-release }},
		{"ok-after", func(r *reporter) { r.row("- ok-after ran") }},
	}
	man := runBatch(r, secs, 50*time.Millisecond)

	if len(man.Errors) != 2 {
		t.Fatalf("manifest has %d errors, want 2: %+v", len(man.Errors), man.Errors)
	}
	if man.Errors[0].Scenario != "boom" || man.Errors[0].Kind != guard.KindPanic {
		t.Errorf("first error = %+v, want scenario boom kind panic", man.Errors[0])
	}
	if !strings.Contains(man.Errors[0].Msg, "forced failure") {
		t.Errorf("panic message %q does not carry the panic value", man.Errors[0].Msg)
	}
	if man.Errors[0].Stack == "" {
		t.Errorf("panic error has no stack trace")
	}
	if man.Errors[1].Scenario != "stuck" || man.Errors[1].Kind != guard.KindDeadline {
		t.Errorf("second error = %+v, want scenario stuck kind deadline", man.Errors[1])
	}
	sum := r.text()
	for _, want := range []string{"ok-before ran", "ok-after ran"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q: sections after a failure must still run", want)
		}
	}

	errPath := filepath.Join(dir, "errors.json")
	if err := man.WriteFile(errPath); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(errPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var got guard.Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("errors.json is not valid JSON: %v", err)
	}
	if len(got.Errors) != 2 {
		t.Fatalf("round-tripped manifest has %d errors, want 2", len(got.Errors))
	}
}

// TestBatchCleanManifest checks a failure-free batch writes an explicit
// empty error list, distinguishing "clean" from "never ran".
func TestBatchCleanManifest(t *testing.T) {
	dir := t.TempDir()
	r := &reporter{}
	man := runBatch(r, []batchSection{
		{"fine", func(r *reporter) { r.row("- fine") }},
	}, 0)
	if len(man.Errors) != 0 {
		t.Fatalf("unexpected errors: %+v", man.Errors)
	}
	errPath := filepath.Join(dir, "errors.json")
	if err := man.WriteFile(errPath); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(errPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.Contains(string(data), `"errors": []`) {
		t.Errorf("empty manifest = %q, want explicit empty errors list", data)
	}
}

// TestReporterSaveRecoverable checks save failures surface as panics (so
// guard.Section can record them) rather than killing the process.
func TestReporterSaveRecoverable(t *testing.T) {
	oldOut := *outDir
	*outDir = filepath.Join(t.TempDir(), "missing", "nested")
	defer func() { *outDir = oldOut }()
	r := &reporter{}
	e := guard.Section("save-fail", 0, func() {
		r.save("x.csv", func(*os.File) error { return nil })
	})
	if e == nil || e.Kind != guard.KindPanic {
		t.Fatalf("save into missing dir: got %+v, want captured panic", e)
	}
}

// TestSectionsFilter checks -only filtering skips unguarded work entirely.
func TestSectionsFilter(t *testing.T) {
	r := &reporter{filter: map[string]bool{"b": true}}
	var ran []string
	man := runBatch(r, []batchSection{
		{"a", func(*reporter) { ran = append(ran, "a") }},
		{"b", func(*reporter) { ran = append(ran, "b") }},
	}, 0)
	if len(man.Errors) != 0 {
		t.Fatalf("unexpected errors: %+v", man.Errors)
	}
	if len(ran) != 1 || ran[0] != "b" {
		t.Fatalf("ran %v, want [b]", ran)
	}
}
