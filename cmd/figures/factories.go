package main

import (
	"math/rand"

	"starvation/internal/cca"
	"starvation/internal/cca/vegas"
	"starvation/internal/core"

	// Register every algorithm with the cca registry.
	_ "starvation/internal/cca/algo1"
	_ "starvation/internal/cca/allegro"
	_ "starvation/internal/cca/bbr"
	_ "starvation/internal/cca/constwnd"
	_ "starvation/internal/cca/copa"
	_ "starvation/internal/cca/cubic"
	_ "starvation/internal/cca/fast"
	_ "starvation/internal/cca/ledbat"
	_ "starvation/internal/cca/reno"
	_ "starvation/internal/cca/verus"
	_ "starvation/internal/cca/vivace"
)

// ccaFactory adapts the registry to core.Factory with a fixed seed per
// instantiation, so every measurement run is reproducible.
func ccaFactory(name string) core.Factory {
	f := cca.Lookup(name)
	if f == nil {
		panic("unknown CCA " + name)
	}
	return func() cca.Algorithm {
		return f(1500, rand.New(rand.NewSource(7)))
	}
}

// vegasRestartable builds Vegas flows for the Theorem 1/2 constructions:
// fresh for probe runs, restarted at the converged state (window plus the
// learned baseRTT) otherwise.
func vegasRestartable(conv *core.Convergence) cca.Algorithm {
	if conv == nil {
		return vegas.New(vegas.Config{})
	}
	v := vegas.New(vegas.Config{BaseRTT: conv.Rm})
	v.SetCwndPkts(conv.FinalCwndPkts)
	return v
}
