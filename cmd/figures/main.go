// Command figures regenerates every figure and table of the paper into an
// output directory: CSV data, ASCII previews, and a markdown summary with
// paper-vs-measured rows (the source material for EXPERIMENTS.md).
//
// Sections are independent jobs executed on the internal/runner pool:
// they run in parallel (-jobs), their artifacts are cached by a
// content-addressed fingerprint of the section configuration (-cache /
// -no-cache), and an interrupted batch resumes from <out>/manifest.json,
// re-simulating only the sections that never completed. Because every
// section accumulates its output in memory and the driver writes files in
// declared section order after the batch, the artifacts are byte-identical
// at any -jobs value — the parity test asserts this.
//
// A panic or a blown -deadline inside a section is recorded as a
// structured RunError and the batch continues with the next section. With
// -retries > 1 (implied by -chaos) failed retryable sections are
// re-attempted with exponential, deterministically jittered backoff. The
// collected failures are always written to <out>/errors.json — an empty
// list means a clean batch — and a non-empty list makes the command exit 1
// after the batch completes.
//
// Interrupting the batch (SIGINT or SIGTERM) cancels its context: running
// sections stop at the next simulation tick, the manifest and errors.json
// flush, and the command exits 3 so callers can tell "interrupted after a
// clean drain" from a runtime failure (1) or a malformed invocation (2).
//
// The -chaos flag turns the batch into a self-test of this supervision:
// seeded faults are injected into section bodies and on-disk state (see
// internal/runner/chaos), the injection log lands in <out>/.chaos/, and —
// because injected faults are capped per section below the retry budget —
// the batch must still converge to a byte-identical output tree.
//
// Usage:
//
//	figures [-out results] [-quick] [-only F3,T5.2] [-jobs N] [-deadline 10m]
//	        [-retries N] [-chaos "seed:7;fail:0.3;panic:0.1"]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"starvation/internal/ccac"
	"starvation/internal/core"
	"starvation/internal/guard"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/prof"
	"starvation/internal/runner"
	"starvation/internal/runner/chaos"
	"starvation/internal/scenario"
	"starvation/internal/trace"
	"starvation/internal/units"
)

var (
	outDir   = flag.String("out", "results", "output directory")
	quick    = flag.Bool("quick", false, "shorter runs (coarser data)")
	only     = flag.String("only", "", "comma-separated experiment IDs to run")
	obsDir   = flag.String("obs", "", "also write per-scenario event traces (JSONL) and Prometheus metrics for the §5 runs into this directory")
	deadline = flag.Duration("deadline", 0, "wall-clock budget per section; a section exceeding it is abandoned and recorded in errors.json (0 = no limit)")
	jobsN    = flag.Int("jobs", 0, "sections to run in parallel (0 = GOMAXPROCS)")
	cacheDir = flag.String("cache", "", "result cache directory (default <out>/.cache)")
	noCache  = flag.Bool("no-cache", false, "disable the result cache (every section re-simulates)")
	listOnly = flag.Bool("list", false, "list section IDs in run order (annotated from <out>/manifest.json when present) and exit")
	retriesN = flag.Int("retries", 1, "attempts per section; failed retryable sections re-run with seeded backoff (1 = no retries)")
	chaosArg = flag.String("chaos", "", "inject seeded orchestration faults, e.g. \"seed:7;fail:0.3;panic:0.1;corrupt:2\" (see internal/runner/chaos)")

	cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the batch to this file")
	memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
)

// stopProfiles finishes -cpuprofile/-memprofile; exit paths call it
// explicitly because deferred calls don't run under os.Exit. Idempotent.
var stopProfiles = func() {}

// exit stops the profilers and terminates with the given status.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// timeNow stamps the summary header; a variable so tests can pin it and
// assert byte-identical summaries across runs. The SOURCE_DATE_EPOCH
// convention pins it from the environment, making whole output trees
// reproducible across invocations (the CI chaos drill diffs a faulted
// run against a fault-free one byte for byte).
var timeNow = func() time.Time {
	if v := os.Getenv("SOURCE_DATE_EPOCH"); v != "" {
		if sec, err := strconv.ParseInt(v, 10, 64); err == nil {
			return time.Unix(sec, 0).UTC()
		}
	}
	return time.Now()
}

// artifactFile is one output file produced by a section, held in memory
// until the driver writes it (Obs files go to -obs, the rest to -out).
type artifactFile struct {
	Name string `json:"name"`
	Obs  bool   `json:"obs,omitempty"`
	Data []byte `json:"data"`
}

// sectionArtifact is the serialized outcome of one section: its summary
// fragment, its console transcript, and its data files. This is what the
// runner caches, so a cache hit restores everything a re-run would print
// and write.
type sectionArtifact struct {
	Summary string         `json:"summary"`
	Console string         `json:"console"`
	Files   []artifactFile `json:"files,omitempty"`
}

// reporter accumulates one section's output in memory. Each job gets its
// own reporter, so sections never contend: no locks, and parallel batches
// produce the same bytes as sequential ones once the driver assembles the
// artifacts in declared order.
type reporter struct {
	summary strings.Builder
	console strings.Builder
	obs     bool
	files   []artifactFile
}

func (r *reporter) section(id, title string) {
	fmt.Fprintf(&r.summary, "\n## %s — %s\n\n", id, title)
	fmt.Fprintf(&r.console, "=== %s — %s\n", id, title)
}

func (r *reporter) row(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	fmt.Fprintf(&r.summary, "%s\n", line)
	fmt.Fprintf(&r.console, "%s\n", line)
}

// print emits console-only output (ASCII plots, tables).
func (r *reporter) print(args ...any) {
	fmt.Fprintln(&r.console, args...)
}

// save captures a data file. It panics on serialization errors rather
// than exiting: the runner converts the panic into a RunError and lets
// the rest of the batch produce its figures.
func (r *reporter) save(name string, write func(w io.Writer) error) {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		panic(fmt.Sprintf("figures: writing %s: %v", name, err))
	}
	r.files = append(r.files, artifactFile{Name: name, Data: buf.Bytes()})
	r.row("- data: `%s`", name)
}

// observe wires a JSONL probe into opts when -obs is set and returns a
// function that, given the finished result, captures the event trace and
// the scenario's metrics file. With -obs unset it is a no-op.
func (r *reporter) observe(name string, opts *scenario.Opts) func(*scenario.Result) {
	if !r.obs {
		return func(*scenario.Result) {}
	}
	var events bytes.Buffer
	jw := obs.NewJSONLWriter(&events)
	opts.Probe = jw
	return func(res *scenario.Result) {
		if err := jw.Close(); err != nil {
			panic(fmt.Sprintf("figures: -obs: %v", err))
		}
		r.files = append(r.files, artifactFile{Name: name + "_events.jsonl", Obs: true, Data: events.Bytes()})
		if res.Net == nil {
			return
		}
		var metrics bytes.Buffer
		if err := obs.WritePrometheus(&metrics, &res.Net.Obs); err != nil {
			panic(fmt.Sprintf("figures: -obs: %v", err))
		}
		r.files = append(r.files, artifactFile{Name: name + "_metrics.txt", Obs: true, Data: metrics.Bytes()})
	}
}

// artifact serializes the reporter for the cache.
func (r *reporter) artifact() ([]byte, error) {
	return json.Marshal(sectionArtifact{
		Summary: r.summary.String(),
		Console: r.console.String(),
		Files:   r.files,
	})
}

// batchSection is one independently guarded unit of the batch.
type batchSection struct {
	id string
	fn func(context.Context, *reporter)
}

var sections = []batchSection{
	{"F1", fig1},
	{"F3", fig3},
	{"F4", fig4},
	{"F5", fig5},
	{"F7", fig7},
	{"T5", tables5},
	{"T6.3", table63},
	{"X-EPISODES", episodes},
	{"X-A1-ablation", ablation},
	{"X-ECN", ecnSection},
	{"X-T2", theorem2},
	{"X-T3", theorem3},
	{"X-CCAC", appendixC},
	{"X-POP", population},
}

// sectionKey is the cache identity of a section: the section ID plus
// every flag that changes its output. The -obs flag participates because
// an observed run carries extra files; -out does not because artifacts
// reference file names relative to the output directory.
func sectionKey(id string) runner.Key {
	return runner.Key{
		Kind:     "figures-section",
		Scenario: id,
		Params: []string{
			fmt.Sprintf("quick=%v", *quick),
			fmt.Sprintf("obs=%v", *obsDir != ""),
		},
	}
}

// sectionJobs converts the wanted sections into runner jobs. Each job
// builds a fresh reporter, runs the section, and serializes the result.
func sectionJobs(secs []batchSection, filter map[string]bool) []runner.Job {
	var jobs []runner.Job
	for _, s := range secs {
		if len(filter) > 0 && !filter[s.id] {
			continue
		}
		fn := s.fn
		jobs = append(jobs, runner.Job{
			ID:  s.id,
			Key: sectionKey(s.id),
			Run: func(ctx context.Context) ([]byte, error) {
				r := &reporter{obs: *obsDir != ""}
				fn(ctx, r)
				// A cancelled context halted the section's simulations at
				// the next run tick, so whatever the reporter holds is
				// truncated: fail the job instead of caching bad data.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return r.artifact()
			},
		})
	}
	return jobs
}

// collectErrors gathers the batch's failures into the errors.json
// manifest, preserving the old guard.Section contract: an explicit empty
// list distinguishes "clean" from "never ran".
func collectErrors(results []runner.JobResult) guard.Manifest {
	var man guard.Manifest
	for _, res := range results {
		if res.Err != nil {
			man.Add(res.Err)
		}
	}
	return man
}

// assemble writes the batch outputs in declared section order: the
// summary fragments into summary.md, the console transcripts to stdout,
// and every data file into -out (or -obs). Failed sections contribute
// nothing here; they are reported via errors.json.
func assemble(w io.Writer, results []runner.JobResult) error {
	var summary strings.Builder
	fmt.Fprintf(&summary, "# Regenerated figures and tables\n\ngenerated %s, quick=%v\n",
		timeNow().Format(time.RFC3339), *quick)
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		var art sectionArtifact
		if err := json.Unmarshal(res.Artifact, &art); err != nil {
			return fmt.Errorf("section %s: corrupt artifact: %v", res.ID, err)
		}
		summary.WriteString(art.Summary)
		fmt.Fprint(w, art.Console)
		for _, f := range art.Files {
			dir := *outDir
			if f.Obs {
				dir = *obsDir
			}
			if err := os.WriteFile(filepath.Join(dir, f.Name), f.Data, 0o644); err != nil {
				return err
			}
		}
	}
	return os.WriteFile(filepath.Join(*outDir, "summary.md"), []byte(summary.String()), 0o644)
}

// listSections prints the section IDs in run order, annotated with the
// recorded outcome from the manifest when one exists: status, attempt
// count, and — when the manifest on disk was damaged and salvaged — one
// leading note saying what LoadManifest recovered.
func listSections(w io.Writer, m *runner.Manifest) {
	if m.RecoveredFrom != "" {
		fmt.Fprintf(w, "# manifest: %s\n", m.RecoveredFrom)
	}
	for _, s := range sections {
		e, ok := m.Entry(s.id)
		if !ok {
			fmt.Fprintln(w, s.id)
			continue
		}
		note := string(e.Status)
		if e.Attempts > 1 {
			note += fmt.Sprintf(", %d attempts", e.Attempts)
		}
		fmt.Fprintf(w, "%s\t[%s]\n", s.id, note)
	}
}

func main() {
	flag.Parse()
	if *listOnly {
		listSections(os.Stdout, runner.LoadManifest(filepath.Join(*outDir, "manifest.json")))
		return
	}
	var injector *chaos.Injector
	if *chaosArg != "" {
		spec, err := chaos.Parse(*chaosArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		injector = chaos.New(spec)
	}
	profStop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopProfiles = profStop
	defer stopProfiles()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if *obsDir != "" {
		if err := os.MkdirAll(*obsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	var filter map[string]bool
	if *only != "" {
		filter = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(id)] = true
		}
	}

	// An interrupt (SIGINT or SIGTERM) cancels the batch context: running
	// sections stop at the next run tick, the manifest records what
	// completed, errors.json and the summary flush, and the command exits
	// 3 so callers can distinguish a drained interrupt from a failure. The
	// next invocation resumes from the cache.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	manifestPath := filepath.Join(*outDir, "manifest.json")
	if injector != nil {
		// Sabotage the persisted state *before* loading it: a truncated
		// manifest must salvage its complete entries, a corrupted cache
		// entry must quarantine and re-run.
		if _, err := injector.TruncateManifest(manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	manifest := runner.LoadManifest(manifestPath)
	if manifest.RecoveredFrom != "" {
		fmt.Fprintf(os.Stderr, "figures: manifest: %s\n", manifest.RecoveredFrom)
	}

	pool := &runner.Pool{
		Jobs:        *jobsN,
		JobDeadline: *deadline,
		Manifest:    manifest,
		Retry:       runner.RetryPolicy{MaxAttempts: *retriesN},
		Progress: func(ev runner.ProgressEvent) {
			switch ev.Kind {
			case runner.ProgressStart:
				fmt.Fprintf(os.Stderr, "=== %s: running\n", ev.Job)
			case runner.ProgressRetry:
				fmt.Fprintf(os.Stderr, "=== %s: attempt %d failed (%s: %s); retrying\n",
					ev.Job, ev.Attempt, ev.Err.Kind, ev.Err.Msg)
			case runner.ProgressFailed:
				fmt.Fprintf(os.Stderr, "[%d/%d] %s: %v (continuing)\n", ev.Done, ev.Total, ev.Job, ev.Err)
			default:
				fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s (%v)\n", ev.Done, ev.Total, ev.Job,
					ev.Kind, ev.Elapsed.Round(time.Millisecond))
			}
		},
	}
	if injector != nil {
		pool.Retry.Seed = injector.Spec.Seed
		if *retriesN <= 1 {
			// Chaos implies a retry budget that outlasts the per-section
			// fault cap, so the batch converges by construction.
			pool.Retry.MaxAttempts = injector.Spec.RetryAttempts()
		}
		// Keep chaos runs fast: injected failures are expected, so back off
		// in milliseconds, not the production default.
		pool.Retry.Base = 5 * time.Millisecond
	}
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			dir = filepath.Join(*outDir, ".cache")
		}
		pool.Cache = &runner.Cache{Dir: dir}
		if injector != nil && injector.Spec.CorruptN > 0 {
			if _, err := injector.CorruptCache(dir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
		}
	}

	jobs := sectionJobs(sections, filter)
	if injector != nil {
		jobs = injector.Wrap(jobs)
	}
	results := pool.Run(ctx, jobs)

	man := collectErrors(results)
	errPath := filepath.Join(*outDir, "errors.json")
	if err := man.WriteFile(errPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if err := assemble(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if injector != nil {
		if err := writeChaosArtifacts(injector); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: %s\n", injector.Summary())
	}
	st := pool.Stats()
	fmt.Printf("\n%d simulated, %d cached, %d failed, %d retried, %d quarantined; summary written to %s\n",
		st.Executed, st.CacheHits, st.Failed, st.Retries, st.CacheCorrupt, filepath.Join(*outDir, "summary.md"))
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "figures: interrupted; partial results flushed, re-run to resume")
		exit(3)
	}
	if len(man.Errors) > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d section(s) failed; see %s\n", len(man.Errors), errPath)
		exit(1)
	}
}

// writeChaosArtifacts records what the injector did under <out>/.chaos/:
// the injection log as JSONL and the injection counters in Prometheus
// text format. The directory sits next to .cache and, like it, is
// excluded from output-tree parity comparisons.
func writeChaosArtifacts(in *chaos.Injector) error {
	dir := filepath.Join(*outDir, ".chaos")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var events bytes.Buffer
	if err := in.WriteLog(&events); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), events.Bytes(), 0o644); err != nil {
		return err
	}
	var metrics bytes.Buffer
	if err := in.WritePrometheus(&metrics); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "metrics.txt"), metrics.Bytes(), 0o644)
}

func dur(long, short time.Duration) time.Duration {
	if *quick {
		return short
	}
	return long
}

// fig1 regenerates Figure 1: ideal-path RTT convergence of a
// delay-convergent CCA (Vegas as the concrete instance).
func fig1(ctx context.Context, r *reporter) {
	r.section("F1", "ideal-path RTT convergence (Vegas, 12 Mbit/s, Rm=100ms)")
	conv := core.MeasureConvergence(ccaFactory("vegas"), units.Mbps(12),
		100*time.Millisecond, core.MeasureOpts{Duration: dur(30*time.Second, 10*time.Second), Ctx: ctx,
			Session: network.NewSession()})
	r.row("- converged at T=%v to [dmin=%v, dmax=%v], δ=%v",
		conv.ConvergedAt.Round(time.Millisecond),
		conv.DMin.Round(10*time.Microsecond), conv.DMax.Round(10*time.Microsecond),
		conv.Delta.Round(10*time.Microsecond))
	r.save("fig1_rtt.csv", func(w io.Writer) error { return conv.RTT.WriteCSV(w) })
	r.print(trace.ASCIIPlot(conv.RTT, 72, 12, "RTT (s)"))
}

// fig3 regenerates Figure 3: the rate-delay graphs of the delay-bounding
// CCAs.
func fig3(ctx context.Context, r *reporter) {
	r.section("F3", "rate-delay graphs (Rm=100ms)")
	n := 7
	lo, hi := units.Mbps(0.4), units.Mbps(100)
	if *quick {
		n = 4
		lo = units.Mbps(1.5)
	}
	rates := core.LogSpace(lo, hi, n)
	// One session serves all eight sequential sweeps: every point shares
	// the single-flow ideal-path shape, so the arenas are built once.
	sess := network.NewSession()
	for _, name := range []string{"vegas", "fast", "copa", "ledbat", "verus", "bbr", "vivace", "algo1"} {
		sw := core.RateDelaySweep(name, ccaFactory(name), 100*time.Millisecond, rates,
			core.MeasureOpts{Duration: dur(30*time.Second, 12*time.Second), Ctx: ctx, Session: sess})
		r.save("fig3_"+name+".csv", func(w io.Writer) error { return sw.WriteCSV(w) })
		r.row("- %s: δmax=%v, dmax-bound=%v over C>%v", name,
			sw.DeltaMax(lo).Round(10*time.Microsecond),
			sw.DMaxBound(lo).Round(10*time.Microsecond), lo)
		r.print(sw)
	}
}

// fig4 regenerates Figure 4: the pigeonhole search for a colliding pair of
// link rates.
func fig4(ctx context.Context, r *reporter) {
	r.section("F4", "pigeonhole search (Vegas, s=8, f=0.8, Rm=50ms)")
	res := core.PigeonholeSearch(ccaFactory("vegas"), 50*time.Millisecond,
		8, 0.8, 5*time.Millisecond, units.Mbps(4), 6,
		core.MeasureOpts{Duration: dur(25*time.Second, 10*time.Second), Ctx: ctx})
	r.row("- %s", res)
}

// fig5 regenerates Figures 5/6: the Theorem 1 trajectory emulation.
func fig5(ctx context.Context, r *reporter) {
	r.section("F5/F6", "Theorem 1 construction (Vegas, C1=12, C2=384 Mbit/s)")
	res := core.EmulateTwoFlow(core.EmulationSpec{
		Make:     vegasRestartable,
		Rm:       50 * time.Millisecond,
		C1:       units.Mbps(12),
		C2:       units.Mbps(384),
		D:        20 * time.Millisecond,
		Measure:  core.MeasureOpts{Duration: dur(30*time.Second, 12*time.Second), Ctx: ctx},
		Duration: dur(30*time.Second, 12*time.Second),
	})
	r.row("- preconditions hold: %v (δmax=%v, ε=%v, gap=%v)",
		res.PreconditionsHold, res.DeltaMax.Round(time.Microsecond),
		res.Epsilon.Round(time.Microsecond), res.DelayGap.Round(time.Microsecond))
	r.row("- starvation ratio %.1f (thpts %v vs %v)", res.Ratio,
		res.TwoFlow.Flows[0].Stat.SteadyThpt, res.TwoFlow.Flows[1].Stat.SteadyThpt)
	r.save("fig5_trajectories.csv", func(w io.Writer) error {
		end := res.TwoFlow.Duration
		return trace.WriteMultiCSV(w, 0, end, 100*time.Millisecond,
			res.Target1, res.Target2,
			res.TwoFlow.Flows[0].RTT, res.TwoFlow.Flows[1].RTT,
			res.TwoFlow.Flows[0].Rate, res.TwoFlow.Flows[1].Rate)
	})
}

// fig7 regenerates Figure 7: Reno/Cubic cwnd evolution under delayed-ACK
// burstiness.
func fig7(ctx context.Context, r *reporter) {
	r.section("F7", "Reno/Cubic cwnd evolution, delayed ACKs ×4 on one flow")
	for _, fn := range []func(scenario.Opts) *scenario.Result{scenario.Fig7Reno, scenario.Fig7Cubic} {
		res := fn(scenario.Opts{Duration: dur(200*time.Second, 60*time.Second), Ctx: ctx})
		r.row("- %s: ratio %.2f (paper %s)", res.ID, res.Observables["ratio"], res.PaperClaim)
		id := strings.ReplaceAll(res.ID, ".", "_")
		r.save(id+"_cwnd.csv", func(w io.Writer) error {
			end := res.Net.Duration
			return trace.WriteMultiCSV(w, 0, end, 500*time.Millisecond,
				res.Net.Flows[0].Cwnd, res.Net.Flows[1].Cwnd)
		})
		r.print(trace.ASCIIPlot(res.Net.Flows[0].Cwnd, 72, 10, res.ID+" delacked cwnd (B)"))
	}
}

// tables5 runs every §5 experiment. With -obs set, each run captures its
// packet-lifecycle events as <name>_events.jsonl and its end-of-run
// counters as <name>_metrics.txt, written into the -obs directory.
func tables5(ctx context.Context, r *reporter) {
	r.section("T5", "§5 starvation experiments")
	for _, name := range []string{"copa-single", "copa-two", "bbr-two",
		"vivace-ackagg", "allegro-loss", "allegro-burst", "allegro-both",
		"allegro-single"} {
		opts := scenario.Opts{Duration: dur(0, 30*time.Second), Ctx: ctx}
		finish := r.observe(name, &opts)
		res := scenario.Registry[name](opts)
		finish(res)
		r.row("### %s", res.ID)
		r.row("```\n%s```", res)
	}
}

// table63 regenerates the §6.3 figure-of-merit comparison and the
// Algorithm 1 fairness demonstration.
func table63(ctx context.Context, r *reporter) {
	r.section("T6.3", "figure-of-merit μ+/μ− and Algorithm 1 fairness")
	rm := time.Duration(0)
	rmax := 100 * time.Millisecond
	for _, d := range []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		for _, s := range []float64{2, 4} {
			r.row("- D=%v s=%v: Vegas family %.1f vs exponential %.3g",
				d, s, core.VegasFigureOfMerit(rmax, rm, d, s),
				core.ExponentialFigureOfMerit(rmax, rm, d, s))
		}
	}
	res := scenario.Algo1Fairness(scenario.Opts{Duration: dur(120*time.Second, 40*time.Second), Ctx: ctx})
	r.row("- Algorithm 1 under jitter: ratio %.2f (bound s=%.0f), utilization %.3f",
		res.Observables["ratio"], res.Observables["s_bound"], res.Observables["utilization"])
	veg := scenario.VegasUnderJitter(scenario.Opts{Duration: dur(120*time.Second, 40*time.Second), Ctx: ctx})
	r.row("- Vegas in the same setting: ratio %.1f (starves)", veg.Observables["ratio"])
}

// episodes regenerates the T5.4d flight-recorder correlation: the bursty
// Allegro flow's windowed delivery rate against the Gilbert–Elliott
// fault-state timeline, with the online detector's episode onsets
// overlaid. The CSV carries one row per sampler window so the
// burst→outage→episode causality is plottable directly.
func episodes(ctx context.Context, r *reporter) {
	r.section("X-EPISODES", "starvation episodes vs loss bursts (T5.4d flight recorder)")
	res := scenario.AllegroBurstLoss(scenario.Opts{
		Duration:  dur(0, 30*time.Second),
		Ctx:       ctx,
		Telemetry: &network.TelemetryConfig{},
	})
	tr := res.Net.Telemetry
	r.row("- %d episodes over %d windows of %v (eps %.2f of fair %v)",
		len(tr.Episodes), tr.Flows[0].WindowsClosed, tr.Window,
		tr.Epsilon, units.Rate(tr.FairShare))
	for _, ep := range tr.Episodes {
		fault := "-"
		if ep.FaultAtOnset {
			fault = "loss burst at onset"
		}
		r.row("- %s: onset %v, %v, severity %.2f, %d bursts while starved (%s)",
			ep.Name, ep.Onset, ep.Duration(), ep.Severity, ep.FaultBursts, fault)
	}

	bursty := &tr.Flows[0]
	starved := func(t time.Duration) int {
		for _, ep := range tr.Episodes {
			if ep.Flow == 0 && t >= ep.Onset && t < ep.End {
				return 1
			}
		}
		return 0
	}
	r.save("t5_4d_episode_timeline.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "t_s,rate_mbps,fault_bad,fault_bursts,starved"); err != nil {
			return err
		}
		for _, win := range bursty.Windows {
			bad := 0
			if win.FaultBad {
				bad = 1
			}
			if _, err := fmt.Fprintf(w, "%.3f,%.3f,%d,%d,%d\n",
				win.Start.Seconds(), win.RateBps(tr.Window)/1e6,
				bad, win.FaultBursts, starved(win.Start)); err != nil {
				return err
			}
		}
		return nil
	})
	var rate trace.Series
	rate.Name = "bursty_windowed_mbps"
	rate.Reserve(len(bursty.Windows))
	for _, win := range bursty.Windows {
		rate.Add(win.Start, win.RateBps(tr.Window)/1e6)
	}
	r.print(trace.ASCIIPlot(&rate, 72, 10, "bursty windowed rate (Mbit/s)"))
}

// ablation runs the §6.3 design-choice ablation for Algorithm 1.
func ablation(ctx context.Context, r *reporter) {
	r.section("X-A1-ablation", "Algorithm 1 design ablation (AIMD/per-Rm vs rejected variants)")
	res := scenario.Algo1Ablation(scenario.Opts{Duration: dur(120*time.Second, 40*time.Second), Ctx: ctx})
	r.row("- AIMD per-Rm (published): ratio %.2f, utilization %.3f",
		res.Observables["aimd_ratio"], res.Observables["aimd_utilization"])
	r.row("- AIAD variant (rejected): ratio %.2f, utilization %.3f",
		res.Observables["aiad_ratio"], res.Observables["aiad_utilization"])
	r.row("- per-ACK variant (rejected): ratio %.2f, utilization %.3f",
		res.Observables["perack_ratio"], res.Observables["perack_utilization"])
}

// ecnSection runs the §6.4 ECN demonstration.
func ecnSection(ctx context.Context, r *reporter) {
	r.section("X-ECN", "§6.4: explicit signaling avoids starvation")
	res := scenario.ECNAvoidsStarvation(scenario.Opts{Duration: dur(60*time.Second, 30*time.Second), Ctx: ctx})
	r.row("- ECN-reacting loss-blind AIMD: ratio %.2f, jain %.3f, utilization %.3f",
		res.Observables["ecn_ratio"], res.Observables["ecn_jain"], res.Observables["ecn_utilization"])
	r.row("- loss-reacting AIMD (control): ratio %.2f, jain %.3f",
		res.Observables["loss_ratio"], res.Observables["loss_jain"])
}

// theorem2 regenerates the under-utilization construction.
func theorem2(ctx context.Context, r *reporter) {
	r.section("X-T2", "Theorem 2: arbitrary under-utilization")
	res := core.UnderutilizationConstruction(core.UnderutilizationSpec{
		Make:       vegasRestartable,
		Rm:         50 * time.Millisecond,
		C:          units.Mbps(12),
		Multiplier: 50,
		Measure:    core.MeasureOpts{Duration: dur(20*time.Second, 10*time.Second), Ctx: ctx},
		Duration:   dur(20*time.Second, 10*time.Second),
	})
	r.row("- emulated C=%v on C'=%v with D=%v: utilization %.4f",
		res.Conv.C, res.BigLink, res.D.Round(time.Millisecond), res.Utilization)
}

// theorem3 regenerates the Appendix B strong-model construction.
func theorem3(ctx context.Context, r *reporter) {
	r.section("X-T3", "Theorem 3: strong-model starvation (Appendix B)")
	res := core.StrongModelConstruction(core.StrongModelSpec{
		Make:     vegasRestartable,
		Rm:       50 * time.Millisecond,
		Lambda:   units.Mbps(4),
		D:        5 * time.Millisecond,
		S:        2,
		Duration: dur(20*time.Second, 10*time.Second),
		Ctx:      ctx,
	})
	for _, st := range res.Steps {
		r.row("- step %d: maxDelay=%v, throughput=%v", st.Index,
			st.MaxDelay.Round(time.Millisecond), st.Throughput)
	}
	if res.FoundPair {
		r.row("- consecutive pair at step %d with ratio %.2f >= s", res.PairIndex, res.Ratio)
	}
}

// population runs the N-flow population-starvation experiments: mixed-CCA,
// heterogeneous-RTT, parking-lot and fan-in populations, each reported as
// starved fraction / share quantiles and saved as a per-flow share CSV.
func population(ctx context.Context, r *reporter) {
	r.section("X-POP", "population-scale starvation (N-flow cohorts, multi-bottleneck)")
	for _, name := range []string{"pop-mixed", "pop-rtt", "pop-parkinglot", "pop-fanin"} {
		opts := scenario.Opts{Duration: dur(0, 6*time.Second), Ctx: ctx}
		finish := r.observe(name, &opts)
		res := scenario.Registry[name](opts)
		finish(res)
		st := res.Net.Population(0)
		r.row("- %s: starved %.0f/%.0f (%.1f%%), jain %.3f, p5 share %.3f, p95 share %.3f",
			name, res.Observables["starved"], res.Observables["flows"],
			100*res.Observables["starved_frac"], res.Observables["jain"],
			res.Observables["share_p5"], res.Observables["share_p95"])
		id := strings.ReplaceAll(name, "-", "_")
		r.save(id+"_shares.csv", func(w io.Writer) error {
			if _, err := fmt.Fprintln(w, "flow,cohort,throughput_bps,share_of_fair"); err != nil {
				return err
			}
			thpts := res.Net.Throughputs()
			for i, f := range res.Net.Flows {
				share := 0.0
				if st.FairShare > 0 {
					share = thpts[i] / st.FairShare
				}
				if _, err := fmt.Fprintf(w, "%s,%s,%.0f,%.4f\n", f.Name, f.Cohort, thpts[i], share); err != nil {
					return err
				}
			}
			return nil
		})
		r.print(st.String())
	}
}

// appendixC runs the bounded adversary search.
func appendixC(_ context.Context, r *reporter) {
	r.section("X-CCAC", "Appendix C: bounded multi-flow adversary search")
	clean := ccac.Search(ccac.Params{CPkts: 20, BufferPkts: 20, Depth: 10})
	inj := ccac.Search(ccac.Params{CPkts: 20, BufferPkts: 20, Depth: 10, InjectLoss: true})
	r.row("- overflow-only worst ratio %.2f over %d nodes (bounded)",
		clean.MaxRatio, clean.StatesExplored)
	r.row("- with injected loss: worst ratio %.2f (starvation enabled)", inj.MaxRatio)
}
