// Command figures regenerates every figure and table of the paper into an
// output directory: CSV data, ASCII previews, and a markdown summary with
// paper-vs-measured rows (the source material for EXPERIMENTS.md).
//
// Each section runs under the run-guard layer: a panic or a blown
// -deadline is recorded as a structured RunError and the batch continues
// with the next section. The collected failures are always written to
// <out>/errors.json — an empty list means a clean batch — and a non-empty
// list makes the command exit 1 after the batch completes.
//
// Usage:
//
//	figures [-out results] [-quick] [-only F3,T5.2] [-deadline 10m]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"starvation/internal/ccac"
	"starvation/internal/core"
	"starvation/internal/guard"
	"starvation/internal/obs"
	"starvation/internal/scenario"
	"starvation/internal/trace"
	"starvation/internal/units"
)

var (
	outDir   = flag.String("out", "results", "output directory")
	quick    = flag.Bool("quick", false, "shorter runs (coarser data)")
	only     = flag.String("only", "", "comma-separated experiment IDs to run")
	obsDir   = flag.String("obs", "", "also write per-scenario event traces (JSONL) and Prometheus metrics for the §5 runs into this directory")
	deadline = flag.Duration("deadline", 0, "wall-clock budget per section; a section exceeding it is abandoned and recorded in errors.json (0 = no limit)")
)

// reporter accumulates the markdown summary. It is mutex-guarded because a
// section abandoned on deadline keeps running in its goroutine (Go cannot
// kill it) and may still emit rows while the batch moves on.
type reporter struct {
	mu      sync.Mutex
	summary strings.Builder
	filter  map[string]bool
}

func (r *reporter) wants(id string) bool {
	if len(r.filter) == 0 {
		return true
	}
	return r.filter[id]
}

func (r *reporter) section(id, title string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(&r.summary, "\n## %s — %s\n\n", id, title)
	fmt.Printf("=== %s — %s\n", id, title)
}

func (r *reporter) row(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(&r.summary, "%s\n", line)
	fmt.Println(line)
}

func (r *reporter) text() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.summary.String()
}

// save panics on I/O errors rather than exiting: sections run under
// guard.Section, which converts the panic into a RunError and lets the
// rest of the batch produce its figures.
func (r *reporter) save(name string, write func(f *os.File) error) {
	path := filepath.Join(*outDir, name)
	f, err := os.Create(path)
	if err != nil {
		panic(fmt.Sprintf("figures: %v", err))
	}
	defer f.Close()
	if err := write(f); err != nil {
		panic(fmt.Sprintf("figures: writing %s: %v", path, err))
	}
	r.row("- data: `%s`", path)
}

// batchSection is one independently guarded unit of the batch.
type batchSection struct {
	id string
	fn func(*reporter)
}

var sections = []batchSection{
	{"F1", fig1},
	{"F3", fig3},
	{"F4", fig4},
	{"F5", fig5},
	{"F7", fig7},
	{"T5", tables5},
	{"T6.3", table63},
	{"X-A1-ablation", ablation},
	{"X-ECN", ecnSection},
	{"X-T2", theorem2},
	{"X-T3", theorem3},
	{"X-CCAC", appendixC},
}

// runBatch runs every wanted section under guard.Section, collecting
// failures instead of aborting: one panicking or deadline-blown section
// costs only its own figures.
func runBatch(r *reporter, secs []batchSection, perSection time.Duration) guard.Manifest {
	var man guard.Manifest
	for _, s := range secs {
		if !r.wants(s.id) {
			continue
		}
		fn := s.fn
		if e := guard.Section(s.id, perSection, func() { fn(r) }); e != nil {
			fmt.Fprintf(os.Stderr, "figures: %v (continuing)\n", e)
			man.Add(e)
		}
	}
	return man
}

func main() {
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *obsDir != "" {
		if err := os.MkdirAll(*obsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	r := &reporter{}
	if *only != "" {
		r.filter = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			r.filter[strings.TrimSpace(id)] = true
		}
	}
	fmt.Fprintf(&r.summary, "# Regenerated figures and tables\n\ngenerated %s, quick=%v\n",
		time.Now().Format(time.RFC3339), *quick)

	man := runBatch(r, sections, *deadline)

	errPath := filepath.Join(*outDir, "errors.json")
	if err := man.WriteFile(errPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sumPath := filepath.Join(*outDir, "summary.md")
	if err := os.WriteFile(sumPath, []byte(r.text()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nsummary written to %s\n", sumPath)
	if len(man.Errors) > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d section(s) failed; see %s\n", len(man.Errors), errPath)
		os.Exit(1)
	}
}

func dur(long, short time.Duration) time.Duration {
	if *quick {
		return short
	}
	return long
}

// fig1 regenerates Figure 1: ideal-path RTT convergence of a
// delay-convergent CCA (Vegas as the concrete instance).
func fig1(r *reporter) {
	r.section("F1", "ideal-path RTT convergence (Vegas, 12 Mbit/s, Rm=100ms)")
	conv := core.MeasureConvergence(ccaFactory("vegas"), units.Mbps(12),
		100*time.Millisecond, core.MeasureOpts{Duration: dur(30*time.Second, 10*time.Second)})
	r.row("- converged at T=%v to [dmin=%v, dmax=%v], δ=%v",
		conv.ConvergedAt.Round(time.Millisecond),
		conv.DMin.Round(10*time.Microsecond), conv.DMax.Round(10*time.Microsecond),
		conv.Delta.Round(10*time.Microsecond))
	r.save("fig1_rtt.csv", func(f *os.File) error { return conv.RTT.WriteCSV(f) })
	fmt.Println(trace.ASCIIPlot(conv.RTT, 72, 12, "RTT (s)"))
}

// fig3 regenerates Figure 3: the rate-delay graphs of the delay-bounding
// CCAs.
func fig3(r *reporter) {
	r.section("F3", "rate-delay graphs (Rm=100ms)")
	n := 7
	lo, hi := units.Mbps(0.4), units.Mbps(100)
	if *quick {
		n = 4
		lo = units.Mbps(1.5)
	}
	rates := core.LogSpace(lo, hi, n)
	for _, name := range []string{"vegas", "fast", "copa", "ledbat", "verus", "bbr", "vivace", "algo1"} {
		sw := core.RateDelaySweep(name, ccaFactory(name), 100*time.Millisecond, rates,
			core.MeasureOpts{Duration: dur(30*time.Second, 12*time.Second)})
		r.save("fig3_"+name+".csv", func(f *os.File) error { return sw.WriteCSV(f) })
		r.row("- %s: δmax=%v, dmax-bound=%v over C>%v", name,
			sw.DeltaMax(lo).Round(10*time.Microsecond),
			sw.DMaxBound(lo).Round(10*time.Microsecond), lo)
		fmt.Println(sw)
	}
}

// fig4 regenerates Figure 4: the pigeonhole search for a colliding pair of
// link rates.
func fig4(r *reporter) {
	r.section("F4", "pigeonhole search (Vegas, s=8, f=0.8, Rm=50ms)")
	res := core.PigeonholeSearch(ccaFactory("vegas"), 50*time.Millisecond,
		8, 0.8, 5*time.Millisecond, units.Mbps(4), 6,
		core.MeasureOpts{Duration: dur(25*time.Second, 10*time.Second)})
	r.row("- %s", res)
}

// fig5 regenerates Figures 5/6: the Theorem 1 trajectory emulation.
func fig5(r *reporter) {
	r.section("F5/F6", "Theorem 1 construction (Vegas, C1=12, C2=384 Mbit/s)")
	res := core.EmulateTwoFlow(core.EmulationSpec{
		Make:     vegasRestartable,
		Rm:       50 * time.Millisecond,
		C1:       units.Mbps(12),
		C2:       units.Mbps(384),
		D:        20 * time.Millisecond,
		Measure:  core.MeasureOpts{Duration: dur(30*time.Second, 12*time.Second)},
		Duration: dur(30*time.Second, 12*time.Second),
	})
	r.row("- preconditions hold: %v (δmax=%v, ε=%v, gap=%v)",
		res.PreconditionsHold, res.DeltaMax.Round(time.Microsecond),
		res.Epsilon.Round(time.Microsecond), res.DelayGap.Round(time.Microsecond))
	r.row("- starvation ratio %.1f (thpts %v vs %v)", res.Ratio,
		res.TwoFlow.Flows[0].Stat.SteadyThpt, res.TwoFlow.Flows[1].Stat.SteadyThpt)
	r.save("fig5_trajectories.csv", func(f *os.File) error {
		end := res.TwoFlow.Duration
		return trace.WriteMultiCSV(f, 0, end, 100*time.Millisecond,
			res.Target1, res.Target2,
			res.TwoFlow.Flows[0].RTT, res.TwoFlow.Flows[1].RTT,
			res.TwoFlow.Flows[0].Rate, res.TwoFlow.Flows[1].Rate)
	})
}

// fig7 regenerates Figure 7: Reno/Cubic cwnd evolution under delayed-ACK
// burstiness.
func fig7(r *reporter) {
	r.section("F7", "Reno/Cubic cwnd evolution, delayed ACKs ×4 on one flow")
	for _, fn := range []func(scenario.Opts) *scenario.Result{scenario.Fig7Reno, scenario.Fig7Cubic} {
		res := fn(scenario.Opts{Duration: dur(200*time.Second, 60*time.Second)})
		r.row("- %s: ratio %.2f (paper %s)", res.ID, res.Observables["ratio"], res.PaperClaim)
		id := strings.ReplaceAll(res.ID, ".", "_")
		r.save(id+"_cwnd.csv", func(f *os.File) error {
			end := res.Net.Duration
			return trace.WriteMultiCSV(f, 0, end, 500*time.Millisecond,
				res.Net.Flows[0].Cwnd, res.Net.Flows[1].Cwnd)
		})
		fmt.Println(trace.ASCIIPlot(res.Net.Flows[0].Cwnd, 72, 10, res.ID+" delacked cwnd (B)"))
	}
}

// tables5 runs every §5 experiment. With -obs set, each run streams its
// packet-lifecycle events to <obs>/<name>_events.jsonl and its end-of-run
// counters to <obs>/<name>_metrics.txt.
func tables5(r *reporter) {
	r.section("T5", "§5 starvation experiments")
	for _, name := range []string{"copa-single", "copa-two", "bbr-two",
		"vivace-ackagg", "allegro-loss", "allegro-burst", "allegro-both",
		"allegro-single"} {
		opts := scenario.Opts{Duration: dur(0, 30*time.Second)}
		finish := observe(name, &opts)
		res := scenario.Registry[name](opts)
		finish(res)
		r.row("### %s", res.ID)
		r.row("```\n%s```", res)
	}
}

// observe wires a JSONL probe into opts when -obs is set and returns a
// function that, given the finished result, closes the trace and writes
// the scenario's metrics file. With -obs unset it is a no-op.
func observe(name string, opts *scenario.Opts) func(*scenario.Result) {
	if *obsDir == "" {
		return func(*scenario.Result) {}
	}
	// Panic, not exit: observe is only called from inside a guarded
	// section, so the batch records the failure and continues.
	fail := func(err error) {
		panic(fmt.Sprintf("figures: -obs: %v", err))
	}
	f, err := os.Create(filepath.Join(*obsDir, name+"_events.jsonl"))
	if err != nil {
		fail(err)
	}
	jw := obs.NewJSONLWriter(f)
	opts.Probe = jw
	return func(res *scenario.Result) {
		if err := jw.Close(); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		if res.Net == nil {
			return
		}
		mf, err := os.Create(filepath.Join(*obsDir, name+"_metrics.txt"))
		if err != nil {
			fail(err)
		}
		defer mf.Close()
		if err := obs.WritePrometheus(mf, &res.Net.Obs); err != nil {
			fail(err)
		}
	}
}

// table63 regenerates the §6.3 figure-of-merit comparison and the
// Algorithm 1 fairness demonstration.
func table63(r *reporter) {
	r.section("T6.3", "figure-of-merit μ+/μ− and Algorithm 1 fairness")
	rm := time.Duration(0)
	rmax := 100 * time.Millisecond
	for _, d := range []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		for _, s := range []float64{2, 4} {
			r.row("- D=%v s=%v: Vegas family %.1f vs exponential %.3g",
				d, s, core.VegasFigureOfMerit(rmax, rm, d, s),
				core.ExponentialFigureOfMerit(rmax, rm, d, s))
		}
	}
	res := scenario.Algo1Fairness(scenario.Opts{Duration: dur(120*time.Second, 40*time.Second)})
	r.row("- Algorithm 1 under jitter: ratio %.2f (bound s=%.0f), utilization %.3f",
		res.Observables["ratio"], res.Observables["s_bound"], res.Observables["utilization"])
	veg := scenario.VegasUnderJitter(scenario.Opts{Duration: dur(120*time.Second, 40*time.Second)})
	r.row("- Vegas in the same setting: ratio %.1f (starves)", veg.Observables["ratio"])
}

// ablation runs the §6.3 design-choice ablation for Algorithm 1.
func ablation(r *reporter) {
	r.section("X-A1-ablation", "Algorithm 1 design ablation (AIMD/per-Rm vs rejected variants)")
	res := scenario.Algo1Ablation(scenario.Opts{Duration: dur(120*time.Second, 40*time.Second)})
	r.row("- AIMD per-Rm (published): ratio %.2f, utilization %.3f",
		res.Observables["aimd_ratio"], res.Observables["aimd_utilization"])
	r.row("- AIAD variant (rejected): ratio %.2f, utilization %.3f",
		res.Observables["aiad_ratio"], res.Observables["aiad_utilization"])
	r.row("- per-ACK variant (rejected): ratio %.2f, utilization %.3f",
		res.Observables["perack_ratio"], res.Observables["perack_utilization"])
}

// ecnSection runs the §6.4 ECN demonstration.
func ecnSection(r *reporter) {
	r.section("X-ECN", "§6.4: explicit signaling avoids starvation")
	res := scenario.ECNAvoidsStarvation(scenario.Opts{Duration: dur(60*time.Second, 30*time.Second)})
	r.row("- ECN-reacting loss-blind AIMD: ratio %.2f, jain %.3f, utilization %.3f",
		res.Observables["ecn_ratio"], res.Observables["ecn_jain"], res.Observables["ecn_utilization"])
	r.row("- loss-reacting AIMD (control): ratio %.2f, jain %.3f",
		res.Observables["loss_ratio"], res.Observables["loss_jain"])
}

// theorem2 regenerates the under-utilization construction.
func theorem2(r *reporter) {
	r.section("X-T2", "Theorem 2: arbitrary under-utilization")
	res := core.UnderutilizationConstruction(core.UnderutilizationSpec{
		Make:       vegasRestartable,
		Rm:         50 * time.Millisecond,
		C:          units.Mbps(12),
		Multiplier: 50,
		Measure:    core.MeasureOpts{Duration: dur(20*time.Second, 10*time.Second)},
		Duration:   dur(20*time.Second, 10*time.Second),
	})
	r.row("- emulated C=%v on C'=%v with D=%v: utilization %.4f",
		res.Conv.C, res.BigLink, res.D.Round(time.Millisecond), res.Utilization)
}

// theorem3 regenerates the Appendix B strong-model construction.
func theorem3(r *reporter) {
	r.section("X-T3", "Theorem 3: strong-model starvation (Appendix B)")
	res := core.StrongModelConstruction(core.StrongModelSpec{
		Make:     vegasRestartable,
		Rm:       50 * time.Millisecond,
		Lambda:   units.Mbps(4),
		D:        5 * time.Millisecond,
		S:        2,
		Duration: dur(20*time.Second, 10*time.Second),
	})
	for _, st := range res.Steps {
		r.row("- step %d: maxDelay=%v, throughput=%v", st.Index,
			st.MaxDelay.Round(time.Millisecond), st.Throughput)
	}
	if res.FoundPair {
		r.row("- consecutive pair at step %d with ratio %.2f >= s", res.PairIndex, res.Ratio)
	}
}

// appendixC runs the bounded adversary search.
func appendixC(r *reporter) {
	r.section("X-CCAC", "Appendix C: bounded multi-flow adversary search")
	clean := ccac.Search(ccac.Params{CPkts: 20, BufferPkts: 20, Depth: 10})
	inj := ccac.Search(ccac.Params{CPkts: 20, BufferPkts: 20, Depth: 10, InjectLoss: true})
	r.row("- overflow-only worst ratio %.2f over %d nodes (bounded)",
		clean.MaxRatio, clean.StatesExplored)
	r.row("- with injected loss: worst ratio %.2f (starvation enabled)", inj.MaxRatio)
}
