package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: starvation/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkScheduleAndFire-4   	68631372	        17.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleAndFire-4   	70221181	        16.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkDeepQueue-4         	 9780175	       122.9 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	starvation/internal/sim	5.1s
pkg: starvation/internal/network
BenchmarkEmulatedSecond-4    	     406	   2901000 ns/op	      3908 pkts/simsec	    806224 B/op	       943 allocs/op
BenchmarkEmulatedSecond-4    	     412	   2850000 ns/op	      3908 pkts/simsec	    806224 B/op	       943 allocs/op
PASS
ok  	starvation/internal/network	4.2s
`

func sampleBaseline() *baseline {
	return &baseline{Benchmarks: map[string]struct {
		Before stats `json:"before"`
		After  stats `json:"after"`
	}{
		"sim.BenchmarkScheduleAndFire": {After: stats{NsPerOp: 16.7, AllocsPerOp: 0}},
		"network.BenchmarkEmulatedSecond": {After: stats{
			NsPerOp: 2773000, AllocsPerOp: 943, PktsPerSimsec: 3908}},
	}}
}

func TestParseBenchFoldsRuns(t *testing.T) {
	m, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	sf, ok := m["sim.BenchmarkScheduleAndFire"]
	if !ok {
		t.Fatalf("names parsed: %v", m)
	}
	if sf.NsPerOp != 16.9 {
		t.Errorf("min ns/op = %v, want 16.9", sf.NsPerOp)
	}
	es := m["network.BenchmarkEmulatedSecond"]
	if es.NsPerOp != 2850000 || es.AllocsPerOp != 943 || es.PktsPerSimsec != 3908 || !es.seenPkts {
		t.Errorf("EmulatedSecond folded wrong: %+v", es)
	}
}

func runCheck(t *testing.T, bench string, tol float64) (int, string) {
	t.Helper()
	m, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	n := check(sampleBaseline(), m, regexp.MustCompile("EmulatedSecond|ScheduleAndFire"), tol, tol, &out)
	return n, out.String()
}

func TestCheckWithinTolerancePasses(t *testing.T) {
	// 17.1/16.9 vs 16.7 and 2.85ms vs 2.773ms are both within 25%.
	if n, out := runCheck(t, sampleBench, 0.25); n != 0 {
		t.Errorf("failures = %d\n%s", n, out)
	}
}

func TestCheckNsRegressionFails(t *testing.T) {
	slow := strings.ReplaceAll(sampleBench, "16.9 ns/op", "16.9 ns/op")
	slow = strings.ReplaceAll(slow, "2901000 ns/op", "4200000 ns/op")
	slow = strings.ReplaceAll(slow, "2850000 ns/op", "4150000 ns/op")
	n, out := runCheck(t, slow, 0.25)
	if n != 1 || !strings.Contains(out, "FAIL") {
		t.Errorf("failures = %d\n%s", n, out)
	}
}

func TestCheckAllocRegressionFails(t *testing.T) {
	// A zero-alloc baseline must not tolerate a single new allocation.
	leaky := strings.ReplaceAll(sampleBench,
		"16.9 ns/op	       0 B/op	       0 allocs/op",
		"16.9 ns/op	      48 B/op	       1 allocs/op")
	if n, _ := runCheck(t, leaky, 0.25); n != 1 {
		t.Errorf("failures = %d, want 1", n)
	}
}

func TestCheckRealizationDriftFails(t *testing.T) {
	drift := strings.ReplaceAll(sampleBench, "3908 pkts/simsec", "3910 pkts/simsec")
	n, out := runCheck(t, drift, 0.25)
	if n != 1 || !strings.Contains(out, "pkts_per_simsec") {
		t.Errorf("failures = %d\n%s", n, out)
	}
}

func TestCheckMissingBenchmarkFails(t *testing.T) {
	// Drop the network package: a renamed/skipped gated benchmark fails.
	simOnly := strings.SplitN(sampleBench, "pkg: starvation/internal/network", 2)[0]
	n, out := runCheck(t, simOnly, 0.25)
	if n != 1 || !strings.Contains(out, "missing") {
		t.Errorf("failures = %d\n%s", n, out)
	}
}
