// Command benchcheck gates CI on hot-path benchmark regressions.
//
// It reads `go test -bench -benchmem` output (possibly with -count > 1),
// takes the best run per benchmark — the minimum ns/op observation is the
// least noise-contaminated estimate on a shared runner — and compares it
// against the committed bench_baseline.json "after" column:
//
//   - ns/op may regress by at most -ns-tolerance (defaults to -tolerance;
//     CI passes a looser value because shared-runner timing varies far
//     more than allocation counts do);
//   - allocs/op is deterministic, so it is gated at -tolerance (default
//     0.25) with no slack below one whole allocation;
//   - a pkts_per_simsec metric, when both sides publish it, must match
//     exactly: it counts simulated work, so a drift means the realization
//     itself changed, not the performance.
//
// Only benchmarks matching -match participate; a matched baseline entry
// that never appears in the bench output is itself a failure, so renaming
// a benchmark cannot silently disable the gate.
//
// Usage:
//
//	go test -run '^$' -bench 'EmulatedSecond|ScheduleAndFire' -benchmem \
//	    -count 5 ./internal/sim/... ./internal/network/... | tee bench.out
//	benchcheck -bench bench.out -baseline bench_baseline.json \
//	    -match 'EmulatedSecond|ScheduleAndFire'
//
// Exit status: 0 when every gated benchmark is within tolerance, 1 on any
// regression or missing benchmark, 2 on a malformed invocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// stats is one measurement (or baseline) of one benchmark.
type stats struct {
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	PktsPerSimsec float64 `json:"pkts_per_simsec"`
	// seen tracks which fields the bench output actually reported.
	seenNs, seenAllocs, seenPkts bool
}

// baseline mirrors bench_baseline.json.
type baseline struct {
	Comment    string `json:"comment"`
	Machine    string `json:"machine"`
	Go         string `json:"go"`
	Benchmarks map[string]struct {
		Before stats `json:"before"`
		After  stats `json:"after"`
	} `json:"benchmarks"`
}

func main() {
	var (
		benchPath    = flag.String("bench", "", "go test -bench output to check (required)")
		baselinePath = flag.String("baseline", "bench_baseline.json", "committed baseline")
		match        = flag.String("match", "EmulatedSecond|ScheduleAndFire", "regexp of gated benchmarks (matched against pkg.BenchmarkName)")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed relative regression for ns/op and allocs/op")
		nsTolerance  = flag.Float64("ns-tolerance", -1, "override -tolerance for ns/op only (shared runners are noisy; allocs/op are not)")
	)
	flag.Parse()
	if *benchPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -bench is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: -match: %v\n", err)
		os.Exit(2)
	}
	if *tolerance < 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: -tolerance must be non-negative")
		os.Exit(2)
	}
	if *nsTolerance < 0 {
		*nsTolerance = *tolerance
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	f, err := os.Open(*benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	measured, err := parseBench(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}

	failures := check(base, measured, re, *nsTolerance, *tolerance, os.Stdout)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d regression(s) beyond tolerance (ns/op %.0f%%, allocs/op %.0f%%)\n",
			failures, *nsTolerance*100, *tolerance*100)
		os.Exit(1)
	}
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &b, nil
}

// check compares every gated baseline entry against the best measured run
// and prints one verdict row per benchmark; it returns the failure count.
func check(base *baseline, measured map[string]stats, re *regexp.Regexp, nsTol, allocTol float64, w io.Writer) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no baseline benchmark matches %q\n", re)
		return 1
	}
	failures := 0
	for _, name := range names {
		want := base.Benchmarks[name].After
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(w, "FAIL %-36s missing from bench output (renamed or skipped?)\n", name)
			failures++
			continue
		}
		var problems []string
		if got.seenNs && want.NsPerOp > 0 {
			limit := want.NsPerOp * (1 + nsTol)
			verdict := "ok"
			if got.NsPerOp > limit {
				problems = append(problems, fmt.Sprintf("ns/op %.4g > %.4g (baseline %.4g +%.0f%%)",
					got.NsPerOp, limit, want.NsPerOp, nsTol*100))
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "%-4s %-36s ns/op     %10.4g  baseline %10.4g  (%+.1f%%)\n",
				verdict, name, got.NsPerOp, want.NsPerOp, 100*(got.NsPerOp-want.NsPerOp)/want.NsPerOp)
		}
		if got.seenAllocs {
			// A zero-alloc baseline tolerates nothing: 0 × (1+tol) is 0,
			// so the first reintroduced allocation fails the gate.
			limit := want.AllocsPerOp * (1 + allocTol)
			verdict := "ok"
			if got.AllocsPerOp > limit {
				problems = append(problems, fmt.Sprintf("allocs/op %.0f > baseline %.0f +%.0f%%",
					got.AllocsPerOp, want.AllocsPerOp, allocTol*100))
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "%-4s %-36s allocs/op %10.0f  baseline %10.0f\n",
				verdict, name, got.AllocsPerOp, want.AllocsPerOp)
		}
		if got.seenPkts && want.PktsPerSimsec > 0 && got.PktsPerSimsec != want.PktsPerSimsec {
			problems = append(problems, fmt.Sprintf("pkts_per_simsec %g != baseline %g (realization drift)",
				got.PktsPerSimsec, want.PktsPerSimsec))
			fmt.Fprintf(w, "FAIL %-36s pkts_per_simsec %g != %g\n", name, got.PktsPerSimsec, want.PktsPerSimsec)
		}
		if len(problems) > 0 {
			failures++
		}
	}
	return failures
}

// parseBench extracts per-benchmark best-run stats from `go test -bench`
// output. `pkg:` lines qualify benchmark names with the package's last
// path element, matching the baseline's "sim.BenchmarkX" keys.
func parseBench(f io.Reader) (map[string]stats, error) {
	out := map[string]stats{}
	pkg := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			parts := strings.Split(strings.TrimSpace(rest), "/")
			pkg = parts[len(parts)-1]
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// BenchmarkName-GOMAXPROCS  N  v1 unit1  v2 unit2 ...
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		s := out[name]
		run := stats{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench line %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				run.NsPerOp, run.seenNs = v, true
			case "B/op":
				run.BytesPerOp = v
			case "allocs/op":
				run.AllocsPerOp, run.seenAllocs = v, true
			case "pkts/simsec", "pkts_per_simsec":
				run.PktsPerSimsec, run.seenPkts = v, true
			}
		}
		// Fold runs of the same benchmark: minimum ns/op (least noise),
		// maximum allocs/op (conservative — a real alloc regression shows
		// in every run), latest pkts_per_simsec (deterministic).
		if run.seenNs && (!s.seenNs || run.NsPerOp < s.NsPerOp) {
			s.NsPerOp, s.BytesPerOp, s.seenNs = run.NsPerOp, run.BytesPerOp, true
		}
		if run.seenAllocs && (!s.seenAllocs || run.AllocsPerOp > s.AllocsPerOp) {
			s.AllocsPerOp, s.seenAllocs = run.AllocsPerOp, true
		}
		if run.seenPkts {
			s.PktsPerSimsec, s.seenPkts = run.PktsPerSimsec, true
		}
		out[name] = s
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}
