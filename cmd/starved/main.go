// Command starved is the long-running experiment service: a daemon that
// accepts batches of population experiments over HTTP, schedules them
// fairly across clients, executes them on a shared worker pool backed by
// the content-addressed artifact cache, and streams per-job progress live.
//
// Usage:
//
//	starved -addr :8377 -data ./starved-data
//	starved -addr 127.0.0.1:0 -data /var/lib/starved -jobs 8 -queue 4096
//
// The API (see internal/service.Handler for the full table):
//
//	POST   /batches                      submit a batch (202; 400/429/503)
//	GET    /batches/{id}                 status
//	GET    /batches/{id}/events          live JSONL/SSE event stream
//	GET    /batches/{id}/artifacts/{job} one job's rendered output
//	GET    /metrics                      Prometheus text exposition
//	GET    /healthz                      liveness (503 while draining)
//	GET    /debug/queue                  scheduler state
//	GET    /                             HTML dashboard
//
// Batch bodies use the CLI's population clause grammar (-flows, -topology,
// …); a malformed spec returns 400 carrying the exact message the CLI
// exits 2 with. `starvesim -server <addr> -flows …` is the matching
// client: it runs a population experiment on the daemon and prints output
// byte-identical to a local run.
//
// On startup the daemon prints one line, "starved: listening on <addr>",
// with the bound address — pass -addr :0 and parse that line to run on a
// random free port (the CI smoke job does exactly this).
//
// SIGINT or SIGTERM drains the daemon: admission stops (503), queued jobs
// are discarded (their batch records and manifests resume them on the
// next start, restoring completed work from the cache without
// re-simulating), running jobs get -drain-grace to finish, and the
// process exits 3 — the CLI's "interrupted with a clean drain" status.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"starvation/internal/runner"
	"starvation/internal/service"

	// Register every algorithm so batch specs can name any CCA the CLI can.
	_ "starvation/internal/cca/algo1"
	_ "starvation/internal/cca/allegro"
	_ "starvation/internal/cca/bbr"
	_ "starvation/internal/cca/constwnd"
	_ "starvation/internal/cca/copa"
	_ "starvation/internal/cca/cubic"
	_ "starvation/internal/cca/fast"
	_ "starvation/internal/cca/ledbat"
	_ "starvation/internal/cca/reno"
	_ "starvation/internal/cca/vegas"
	_ "starvation/internal/cca/verus"
	_ "starvation/internal/cca/vivace"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8377", "listen address (\":0\" picks a random free port, reported on stdout)")
		data       = flag.String("data", "starved-data", "state directory: artifact cache, batch records, manifests")
		jobs       = flag.Int("jobs", 0, "concurrently executing jobs (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", service.DefaultQueueDepth, "max queued jobs across all clients before submissions get 429")
		deadline   = flag.Duration("deadline", 0, "wall-clock budget per job (0 = unlimited)")
		retries    = flag.Int("retries", 1, "attempts per job for batches without a chaos spec (1 = no retries)")
		drainGrace = flag.Duration("drain-grace", service.DefaultDrainGrace, "how long a drain lets running jobs finish before cancelling them")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "starved: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	svc, err := service.New(service.Config{
		DataDir:     *data,
		Workers:     *jobs,
		QueueDepth:  *queue,
		JobDeadline: *deadline,
		Retry:       runner.RetryPolicy{MaxAttempts: *retries},
		DrainGrace:  *drainGrace,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Printf("starved: %v", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("starved: %v", err)
		os.Exit(1)
	}
	svc.Start()
	// The contract line: CI and scripts bind :0 and parse the real port
	// from here. Keep the format stable.
	fmt.Printf("starved: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			logger.Printf("starved: %v", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stopSignals() // a second signal kills immediately
		logger.Printf("starved: signal received; draining")
		// Drain first so in-flight work lands in manifests; open event
		// streams for non-terminal batches are then cut by the shutdown
		// deadline (their batches resume on the next start).
		svc.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = hs.Shutdown(shutCtx)
		cancel()
		_ = hs.Close()
		logger.Printf("starved: drained; exiting")
		os.Exit(3)
	}
}
